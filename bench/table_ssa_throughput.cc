// T3 (extension table): SSA throughput — Gillespie direct method vs
// Gibson-Bruck next-reaction method, on a small dense CRN (every reaction
// shares species) and on a wide compiled circuit (many nearly-independent
// reactions, where the dependency-graph method should win).
#include <chrono>

#include "bench_table.h"
#include "compile/primitives.h"
#include "compile/theorem52.h"
#include "fn/examples.h"
#include "sim/gillespie.h"
#include "sim/next_reaction.h"

namespace {

using namespace crnkit;
using math::Int;

double events_per_second(const crn::Crn& crn, const crn::Config& initial,
                         bool next_reaction) {
  sim::Rng rng(12345);
  sim::GillespieOptions options;
  options.max_events = 400'000;
  const auto start = std::chrono::steady_clock::now();
  const auto run = next_reaction
                       ? sim::simulate_next_reaction(crn, initial, rng,
                                                     options)
                       : sim::simulate_direct(crn, initial, rng, options);
  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  return static_cast<double>(run.events) / std::max(elapsed, 1e-9);
}

void print_artifacts() {
  std::vector<std::vector<std::string>> rows;

  // Dense: Fig 1 max CRN (4 reactions, heavily coupled).
  const crn::Crn max2 = compile::fig1_max_crn();
  const auto max_init = max2.initial_configuration({100000, 100000});
  rows.push_back(
      {"fig1-max (4 rxn)", bench::fmt(events_per_second(max2, max_init,
                                                        false)),
       bench::fmt(events_per_second(max2, max_init, true))});

  // Wide: the Theorem 5.2 circuit for fig7 (dozens of loosely coupled
  // reactions across modules).
  compile::ObliviousSpec spec{fn::examples::fig7(), 1,
                              fn::examples::fig7_extensions(), {}};
  const crn::Crn wide = compile::compile_theorem52(spec);
  const auto wide_init = wide.initial_configuration({3000, 4000});
  rows.push_back({"thm52-fig7 (" + std::to_string(wide.reactions().size()) +
                      " rxn)",
                  bench::fmt(events_per_second(wide, wide_init, false)),
                  bench::fmt(events_per_second(wide, wide_init, true))});

  bench::print_table("SSA throughput (events/second)",
                     {"CRN", "direct", "next-reaction"}, rows, 22);
}

void BM_DirectMaxCrn(benchmark::State& state) {
  const crn::Crn max2 = compile::fig1_max_crn();
  const Int n = state.range(0);
  for (auto _ : state) {
    sim::Rng rng(1);
    benchmark::DoNotOptimize(
        sim::simulate_direct(max2, max2.initial_configuration({n, n}), rng)
            .events);
  }
  state.SetItemsProcessed(state.iterations() * 3 * n);
}
BENCHMARK(BM_DirectMaxCrn)->Arg(1000)->Arg(10000);

void BM_NextReactionMaxCrn(benchmark::State& state) {
  const crn::Crn max2 = compile::fig1_max_crn();
  const Int n = state.range(0);
  for (auto _ : state) {
    sim::Rng rng(1);
    benchmark::DoNotOptimize(
        sim::simulate_next_reaction(max2,
                                    max2.initial_configuration({n, n}), rng)
            .events);
  }
  state.SetItemsProcessed(state.iterations() * 3 * n);
}
BENCHMARK(BM_NextReactionMaxCrn)->Arg(1000)->Arg(10000);

void BM_DirectWideCircuit(benchmark::State& state) {
  compile::ObliviousSpec spec{fn::examples::fig7(), 1,
                              fn::examples::fig7_extensions(), {}};
  const crn::Crn wide = compile::compile_theorem52(spec);
  const Int n = state.range(0);
  for (auto _ : state) {
    sim::Rng rng(1);
    benchmark::DoNotOptimize(
        sim::simulate_direct(wide, wide.initial_configuration({n, n}), rng)
            .events);
  }
}
BENCHMARK(BM_DirectWideCircuit)->Arg(200)->Arg(1000);

void BM_NextReactionWideCircuit(benchmark::State& state) {
  compile::ObliviousSpec spec{fn::examples::fig7(), 1,
                              fn::examples::fig7_extensions(), {}};
  const crn::Crn wide = compile::compile_theorem52(spec);
  const Int n = state.range(0);
  for (auto _ : state) {
    sim::Rng rng(1);
    benchmark::DoNotOptimize(
        sim::simulate_next_reaction(wide,
                                    wide.initial_configuration({n, n}), rng)
            .events);
  }
}
BENCHMARK(BM_NextReactionWideCircuit)->Arg(200)->Arg(1000);

}  // namespace

CRNKIT_BENCH_MAIN(print_artifacts)
