// T3 (extension table): SSA throughput — the seed's dense direct method
// (every propensity recomputed per event) vs the compiled engine paths:
// direct method with dependency-graph updates, Gibson-Bruck next-reaction,
// and the batched EnsembleRunner (aggregate events/sec across a trajectory
// batch). Run on a small dense CRN (every reaction shares species) and on a
// wide compiled circuit (many nearly-independent reactions, where the
// dependency-graph methods win asymptotically).
//
// Emits BENCH_ssa_throughput.json with per-path events/sec and the
// compiled-over-dense speedup per CRN, so the perf trajectory is tracked
// across PRs.
#include <chrono>

#include "bench_table.h"
#include "compile/primitives.h"
#include "compile/theorem52.h"
#include "fn/examples.h"
#include "scenario/registry.h"
#include "sim/ensemble.h"
#include "sim/gillespie.h"
#include "sim/next_reaction.h"

namespace {

using namespace crnkit;
using math::Int;

enum class Path { kDense, kDirect, kNextReaction, kEnsemble };

struct Measurement {
  double events_per_sec = 0.0;
  double wall_seconds = 0.0;
  std::uint64_t events = 0;
};

Measurement measure(const crn::Crn& crn, const crn::Config& initial,
                    Path path, std::uint64_t max_events) {
  Measurement m;
  if (path == Path::kEnsemble) {
    const sim::EnsembleRunner runner(crn);
    sim::EnsembleOptions options;
    options.trajectories = 8;
    options.seed = 12345;
    options.method = sim::EnsembleMethod::kDirect;
    options.max_events = max_events / 8;
    const auto batch = runner.run(initial, options);
    return {batch.events_per_second(), batch.wall_seconds,
            batch.total_events};
  }

  sim::Rng rng(12345);
  sim::GillespieOptions options;
  options.max_events = max_events;
  if (path == Path::kDense) {
    const auto start = std::chrono::steady_clock::now();
    const auto run = sim::simulate_direct_dense(crn, initial, rng, options);
    m.wall_seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    m.events = run.events;
    m.events_per_sec =
        static_cast<double>(run.events) / std::max(m.wall_seconds, 1e-9);
    return m;
  }
  const sim::CompiledNetwork compiled(crn);
  const auto start = std::chrono::steady_clock::now();
  sim::GillespieResult run;
  switch (path) {
    case Path::kDirect:
      run = sim::simulate_direct(compiled, initial, rng, options);
      break;
    case Path::kNextReaction:
      run = sim::simulate_next_reaction(compiled, initial, rng, options);
      break;
    case Path::kDense:
    case Path::kEnsemble:
      break;  // handled above
  }
  m.wall_seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  m.events = run.events;
  m.events_per_sec =
      static_cast<double>(run.events) / std::max(m.wall_seconds, 1e-9);
  return m;
}

void print_artifacts() {
  struct Case {
    std::string name;
    crn::Crn crn;
    crn::Config initial;
  };
  // The workloads come from the scenario registry (dense Fig. 1 networks
  // where every reaction shares species, the wide Theorem 5.2 circuit, and
  // the deep Observation 2.2 chain whose dependency graph makes the O(R)
  // dense recompute pure waste). Inputs are each scenario's sim_input —
  // sized so no case goes silent inside the event budget.
  std::vector<Case> cases;
  for (const char* scenario_name :
       {"fig1/max", "fig1/min", "thm52/fig7", "chain/compose-256"}) {
    scenario::Scenario s =
        scenario::Registry::builtin().build(scenario_name);
    crn::Config init = s.crn.initial_configuration(s.sim_input);
    const std::string name = s.name + " (" +
                             std::to_string(s.crn.reactions().size()) +
                             " rxn)";
    cases.push_back({name, std::move(s.crn), std::move(init)});
  }

  const std::uint64_t max_events = 400'000;
  std::vector<std::vector<std::string>> rows;
  std::vector<bench::BenchRecord> records;
  std::vector<std::string> extras;
  for (const Case& c : cases) {
    const Measurement dense = measure(c.crn, c.initial, Path::kDense,
                                      max_events);
    const Measurement direct = measure(c.crn, c.initial, Path::kDirect,
                                       max_events);
    const Measurement nrm = measure(c.crn, c.initial, Path::kNextReaction,
                                    max_events);
    const Measurement ens = measure(c.crn, c.initial, Path::kEnsemble,
                                    max_events);
    const double speedup = direct.events_per_sec /
                           std::max(dense.events_per_sec, 1e-9);
    rows.push_back({c.name, bench::fmt(dense.events_per_sec),
                    bench::fmt(direct.events_per_sec),
                    bench::fmt(nrm.events_per_sec),
                    bench::fmt(ens.events_per_sec), bench::fmt(speedup)});
    records.push_back({c.name + "/dense", dense.events_per_sec,
                       dense.wall_seconds, dense.events});
    records.push_back({c.name + "/direct", direct.events_per_sec,
                       direct.wall_seconds, direct.events});
    records.push_back({c.name + "/next-reaction", nrm.events_per_sec,
                       nrm.wall_seconds, nrm.events});
    records.push_back({c.name + "/ensemble", ens.events_per_sec,
                       ens.wall_seconds, ens.events});

    std::string key = c.name.substr(0, c.name.find(' '));
    for (char& ch : key) {
      if (ch == '-' || ch == '/') ch = '_';
    }
    char buf[96];
    std::snprintf(buf, sizeof(buf), "\"speedup_%s\": %.2f", key.c_str(),
                  speedup);
    extras.emplace_back(buf);
  }

  bench::print_table(
      "SSA throughput (events/second): seed dense direct vs compiled engine",
      {"CRN", "dense", "direct", "next-rxn", "ensemble", "speedup"}, rows,
      18);
  bench::write_bench_json("ssa_throughput", records, extras);
}

void BM_DenseDirectMaxCrn(benchmark::State& state) {
  const crn::Crn max2 = compile::fig1_max_crn();
  const Int n = state.range(0);
  for (auto _ : state) {
    sim::Rng rng(1);
    benchmark::DoNotOptimize(
        sim::simulate_direct_dense(max2, max2.initial_configuration({n, n}),
                                   rng)
            .events);
  }
  state.SetItemsProcessed(state.iterations() * 3 * n);
}
BENCHMARK(BM_DenseDirectMaxCrn)->Arg(1000)->Arg(10000);

void BM_DirectMaxCrn(benchmark::State& state) {
  const crn::Crn max2 = compile::fig1_max_crn();
  const sim::CompiledNetwork compiled(max2);
  const Int n = state.range(0);
  for (auto _ : state) {
    sim::Rng rng(1);
    benchmark::DoNotOptimize(
        sim::simulate_direct(compiled, max2.initial_configuration({n, n}),
                             rng)
            .events);
  }
  state.SetItemsProcessed(state.iterations() * 3 * n);
}
BENCHMARK(BM_DirectMaxCrn)->Arg(1000)->Arg(10000);

void BM_NextReactionMaxCrn(benchmark::State& state) {
  const crn::Crn max2 = compile::fig1_max_crn();
  const sim::CompiledNetwork compiled(max2);
  const Int n = state.range(0);
  for (auto _ : state) {
    sim::Rng rng(1);
    benchmark::DoNotOptimize(
        sim::simulate_next_reaction(compiled,
                                    max2.initial_configuration({n, n}), rng)
            .events);
  }
  state.SetItemsProcessed(state.iterations() * 3 * n);
}
BENCHMARK(BM_NextReactionMaxCrn)->Arg(1000)->Arg(10000);

void BM_DirectWideCircuit(benchmark::State& state) {
  compile::ObliviousSpec spec{fn::examples::fig7(), 1,
                              fn::examples::fig7_extensions(), {}};
  const crn::Crn wide = compile::compile_theorem52(spec);
  const sim::CompiledNetwork compiled(wide);
  const Int n = state.range(0);
  for (auto _ : state) {
    sim::Rng rng(1);
    benchmark::DoNotOptimize(
        sim::simulate_direct(compiled, wide.initial_configuration({n, n}),
                             rng)
            .events);
  }
}
BENCHMARK(BM_DirectWideCircuit)->Arg(200)->Arg(1000);

void BM_EnsembleMaxCrn(benchmark::State& state) {
  const crn::Crn max2 = compile::fig1_max_crn();
  const sim::EnsembleRunner runner(max2);
  const Int n = state.range(0);
  sim::EnsembleOptions options;
  options.trajectories = 8;
  options.method = sim::EnsembleMethod::kDirect;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        runner.run_for_input({n, n}, options).total_events);
  }
  state.SetItemsProcessed(state.iterations() * 8 * 3 * n);
}
BENCHMARK(BM_EnsembleMaxCrn)->Arg(1000)->Arg(10000);

}  // namespace

CRNKIT_BENCH_MAIN(print_artifacts)
