// Composition pipeline throughput: random circuit DAGs from the
// `circuit/random-<n>-<seed>` family are lowered through crn::Circuit,
// shrunk by the optimization passes, and exact-verified — measuring
// modules compiled per second, species/reactions before and after the
// passes, and verify throughput (configs/sec) on the composed outputs.
// Emits BENCH_composition.json for CI trend tracking.
#include <chrono>

#include "bench_table.h"
#include "compile/circuit_expr.h"
#include "crn/passes.h"
#include "verify/stable.h"

namespace {

using namespace crnkit;
using Clock = std::chrono::steady_clock;

double seconds_since(const Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

void print_artifacts() {
  struct Case {
    int modules;
    std::uint64_t seed;
  };
  const std::vector<Case> cases = {{12, 1}, {16, 2}, {20, 3}, {32, 4},
                                   {48, 5}};

  std::vector<bench::BenchRecord> records;
  std::vector<std::vector<std::string>> rows;
  util::JsonWriter circuits;
  circuits.begin_array();

  for (const Case& c : cases) {
    const std::string name = "circuit/random-" + std::to_string(c.modules) +
                             "-" + std::to_string(c.seed);
    const compile::CircuitExpr expr =
        compile::random_circuit_expr(c.modules, c.seed);

    // Compile throughput: expression -> circuit -> flat CRN, averaged over
    // repeated lowerings so the clock resolution doesn't dominate.
    const int reps = 20;
    const auto compile_start = Clock::now();
    compile::LoweredCircuit lowered;
    for (int r = 0; r < reps; ++r) {
      lowered = compile::lower_circuit_expr(expr, name);
    }
    const double compile_seconds = seconds_since(compile_start) / reps;

    const auto optimize_start = Clock::now();
    const crn::PassPipelineResult optimized = crn::optimize(lowered.crn);
    const double optimize_seconds = seconds_since(optimize_start);

    // Verify throughput on the composed output. Fan-out in the bigger
    // DAGs makes the all-ones reachable space exceed the default budget;
    // their exact point is all-zeros (leader-driven constants only), with
    // larger inputs covered by simcheck in the test suite.
    const fn::Point x(static_cast<std::size_t>(optimized.crn.input_arity()),
                      c.modules <= 20 ? 1 : 0);
    const math::Int expected = expr.evaluate(x);
    const auto verify_start = Clock::now();
    const auto verdict =
        verify::check_stable_computation(optimized.crn, x, expected);
    const double verify_seconds = seconds_since(verify_start);
    const std::string verify_status =
        verdict.ok && verdict.complete
            ? "proved"
            : !verdict.complete ? "inconclusive" : "FAILED";

    rows.push_back(
        {name, bench::fmt(static_cast<long long>(c.modules)),
         bench::fmt(static_cast<long long>(optimized.species_before)) + "/" +
             bench::fmt(static_cast<long long>(optimized.reactions_before)),
         bench::fmt(static_cast<long long>(optimized.species_after)) + "/" +
             bench::fmt(static_cast<long long>(optimized.reactions_after)),
         bench::fmt(compile_seconds * 1e3) + "ms",
         bench::fmt(optimize_seconds * 1e3) + "ms", verify_status,
         bench::fmt(static_cast<long long>(verdict.num_configs))});

    bench::BenchRecord compile_record;
    compile_record.name = name + "/compile";
    compile_record.events = static_cast<std::uint64_t>(c.modules);
    compile_record.wall_seconds = compile_seconds;
    compile_record.events_per_sec =
        compile_seconds > 0.0 ? c.modules / compile_seconds : 0.0;
    records.push_back(compile_record);

    bench::BenchRecord verify_record;
    verify_record.name = name + "/verify";
    verify_record.events = verdict.num_configs;
    verify_record.wall_seconds = verify_seconds;
    verify_record.events_per_sec =
        verify_seconds > 0.0
            ? static_cast<double>(verdict.num_configs) / verify_seconds
            : 0.0;
    records.push_back(verify_record);

    circuits.begin_object()
        .kv("name", name)
        .kv("modules", c.modules)
        .kv("species_before", optimized.species_before)
        .kv("species_after", optimized.species_after)
        .kv("reactions_before", optimized.reactions_before)
        .kv("reactions_after", optimized.reactions_after)
        .kv("verify_status", verify_status)
        .kv("verify_configs", verdict.num_configs)
        .end_object();
  }
  circuits.end_array();

  bench::print_table(
      "Composition pipeline: compile -> optimize -> exact verify",
      {"circuit", "modules", "raw sp/rx", "opt sp/rx", "compile",
       "optimize", "verify", "configs"},
      rows, 13);

  bench::write_bench_json("composition", records,
                          {"\"circuits\": " + circuits.str()});
}

void BM_ParseExpression(benchmark::State& state) {
  const std::string text = "min(x1 + 2*x2, div(x3, 2)) + max(sub(x1, 1), 2)";
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        compile::parse_circuit_expr(text).module_count());
  }
}
BENCHMARK(BM_ParseExpression);

void BM_LowerRandomCircuit(benchmark::State& state) {
  const compile::CircuitExpr expr =
      compile::random_circuit_expr(static_cast<int>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        compile::lower_circuit_expr(expr, "bench").crn.species_count());
  }
}
BENCHMARK(BM_LowerRandomCircuit)->Arg(12)->Arg(48);

void BM_OptimizeRandomCircuit(benchmark::State& state) {
  const compile::CircuitExpr expr =
      compile::random_circuit_expr(static_cast<int>(state.range(0)), 1);
  const compile::LoweredCircuit lowered =
      compile::lower_circuit_expr(expr, "bench");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        crn::optimize(lowered.crn).crn.species_count());
  }
}
BENCHMARK(BM_OptimizeRandomCircuit)->Arg(12)->Arg(48);

}  // namespace

CRNKIT_BENCH_MAIN(print_artifacts)
