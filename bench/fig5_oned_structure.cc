// E5 / Figure 5: every semilinear nondecreasing f : N -> N is eventually
// quilt-affine — detect (n, p, delta_0..delta_{p-1}) for the 1D suite and
// verify the Theorem 3.1 CRNs built from that structure.
#include <sstream>

#include "bench_table.h"
#include "compile/oned.h"
#include "fn/examples.h"
#include "fn/oned_structure.h"
#include "verify/stable.h"

namespace {

using namespace crnkit;
using math::Int;

void print_artifacts() {
  std::vector<std::vector<std::string>> rows;
  for (const auto& f : fn::examples::oned_suite()) {
    const auto s = fn::detect_oned_structure(f);
    if (!s) {
      rows.push_back({f.name(), "-", "-", "-", "no structure"});
      continue;
    }
    std::ostringstream deltas;
    for (std::size_t i = 0; i < s->deltas.size(); ++i) {
      if (i > 0) deltas << ",";
      deltas << s->deltas[i];
    }
    const crn::Crn crn = compile::compile_oned(*s, "oned[" + f.name() + "]");
    bool ok = true;
    for (Int x = 0; x <= 12; ++x) {
      ok = ok && verify::check_stable_computation(crn, {x}, f(x)).ok;
    }
    rows.push_back({f.name(), bench::fmt(s->n), bench::fmt(s->p),
                    deltas.str(), ok ? "proved" : "FAIL"});
  }
  bench::print_table(
      "Fig 5: eventual quilt-affine structure of 1D semilinear "
      "nondecreasing functions + Theorem 3.1 CRNs",
      {"f", "n", "p", "deltas", "CRN check"}, rows, 18);

  // The Fig 5 series itself: f values and differences for the wiggle
  // function, showing the periodic tail.
  const auto suite = fn::examples::oned_suite();
  const auto& f = suite[5];  // piecewise-wiggle
  std::vector<std::vector<std::string>> series;
  for (Int x = 0; x <= 11; ++x) {
    series.push_back({bench::fmt(x), bench::fmt(f(x)),
                      bench::fmt(f(x + 1) - f(x))});
  }
  bench::print_table("Fig 5 series for '" + f.name() + "'",
                     {"x", "f(x)", "f(x+1)-f(x)"}, series, 14);
}

void BM_DetectStructure(benchmark::State& state) {
  const auto suite = fn::examples::oned_suite();
  const auto& f = suite[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state) {
    const auto s = fn::detect_oned_structure(f);
    benchmark::DoNotOptimize(s.has_value());
  }
}
BENCHMARK(BM_DetectStructure)->DenseRange(0, 5);

void BM_CompileOned(benchmark::State& state) {
  const auto suite = fn::examples::oned_suite();
  const auto& f = suite[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state) {
    const crn::Crn crn = compile::compile_oned(f);
    benchmark::DoNotOptimize(crn.species_count());
  }
}
BENCHMARK(BM_CompileOned)->DenseRange(0, 5);

}  // namespace

CRNKIT_BENCH_MAIN(print_artifacts)
