// T4 (extension table): cost of *proving* stable computation — reachable
// configuration counts and SCC-checker decisions as inputs grow, for the
// Fig 1 examples and the Theorem 5.2 circuit. The state space of the
// composed circuit grows combinatorially (products of per-module
// interleavings), which is exactly why the library pairs the exact checker
// with the randomized one.
#include "bench_table.h"
#include "compile/primitives.h"
#include "compile/theorem52.h"
#include "fn/examples.h"
#include "verify/reachability.h"
#include "verify/stable.h"

namespace {

using namespace crnkit;
using math::Int;

void print_artifacts() {
  std::vector<std::vector<std::string>> rows;
  auto census = [&rows](const std::string& name, const crn::Crn& crn,
                        const fn::Point& x, Int expected) {
    const auto graph = verify::explore(crn, crn.initial_configuration(x));
    const auto check = verify::check_stable_computation(crn, x, expected);
    rows.push_back({name,
                    "(" + std::to_string(x[0]) +
                        (x.size() > 1 ? "," + std::to_string(x[1]) : "") +
                        ")",
                    bench::fmt(static_cast<long long>(graph.size())),
                    graph.complete ? "complete" : "truncated",
                    check.ok ? "proved" : "failed/unknown"});
  };

  const crn::Crn min2 = compile::min_crn(2);
  const crn::Crn max2 = compile::fig1_max_crn();
  compile::ObliviousSpec spec{fn::examples::fig7(), 1,
                              fn::examples::fig7_extensions(), {}};
  const crn::Crn circuit = compile::compile_theorem52(spec);

  for (const Int n : {2, 4, 8, 16}) {
    census("min", min2, {n, n}, n);
  }
  for (const Int n : {2, 4, 6}) {
    census("max", max2, {n, n}, n);
  }
  for (const Int n : {1, 2, 3}) {
    census("thm52-fig7", circuit, {n, n}, fn::examples::fig7()({n, n}));
  }
  bench::print_table(
      "Exact verification cost: reachable configurations vs input",
      {"CRN", "x", "configs", "exploration", "verdict"}, rows, 14);
  std::printf("\nThe composed circuit's state space grows combinatorially — "
              "the reason sim_check (randomized silent runs) exists.\n");
}

void BM_ExploreMin(benchmark::State& state) {
  const crn::Crn min2 = compile::min_crn(2);
  const Int n = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        verify::explore(min2, min2.initial_configuration({n, n})).size());
  }
}
BENCHMARK(BM_ExploreMin)->Arg(8)->Arg(64)->Arg(512);

void BM_ExploreMax(benchmark::State& state) {
  const crn::Crn max2 = compile::fig1_max_crn();
  const Int n = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        verify::explore(max2, max2.initial_configuration({n, n})).size());
  }
}
BENCHMARK(BM_ExploreMax)->Arg(2)->Arg(4)->Arg(6)->Unit(benchmark::kMillisecond);

void BM_StableCheckCircuit(benchmark::State& state) {
  compile::ObliviousSpec spec{fn::examples::fig7(), 1,
                              fn::examples::fig7_extensions(), {}};
  const crn::Crn circuit = compile::compile_theorem52(spec);
  const Int n = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        verify::check_stable_computation(circuit, {n, n},
                                         fn::examples::fig7()({n, n}))
            .ok);
  }
}
BENCHMARK(BM_StableCheckCircuit)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

}  // namespace

CRNKIT_BENCH_MAIN(print_artifacts)
