// T4 (extension table): cost of *proving* stable computation — and the
// perf trajectory of the exact-verification core.
//
// The arena-backed explorer (verify/config_store.h + reachability.cc:
// flat 32-bit arena, sharded open-addressing interning with incremental
// Zobrist hashing, compiled delta kernels, CSR edges) is measured against
// `legacy_explore`, a verbatim port of the pre-PR explorer
// (std::unordered_map over heap-allocated crn::Config vectors, term-list
// reaction application) on the same workloads at the same node budget.
// Emits BENCH_verification.json (configs/sec, edges/sec, peak
// bytes/config, speedups, and an mt-speedup sweep over {1,2,4,8} task-pool
// threads) so CI diffs the verifier's throughput like the SSA engine's —
// tools/bench_compare gates releases on >30% configs/s regressions against
// the committed baseline.
//
// Setting CRNKIT_BENCH_FAST=1 (the ctest `bench_smoke_verification_run`
// fixture) trims to the arena engine on the light workloads: enough
// records for bench_compare to diff, cheap enough for every test run.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <deque>
#include <thread>
#include <unordered_map>
#include <utility>

#include "bench_table.h"
#include "lint/analyzer.h"
#include "lint/guide.h"
#include "math/check.h"
#include "scenario/registry.h"
#include "util/task_pool.h"
#include "verify/reachability.h"
#include "verify/stable.h"

namespace {

using namespace crnkit;
using math::Int;

// --- the pre-PR explorer, kept verbatim as the measurement baseline ---

struct LegacyConfigHash {
  std::size_t operator()(const crn::Config& c) const {
    std::size_t h = 0xcbf29ce484222325ULL;
    for (const math::Int v : c) {
      h ^= static_cast<std::size_t>(v) + 0x9e3779b97f4a7c15ULL + (h << 6) +
           (h >> 2);
    }
    return h;
  }
};

struct LegacyGraph {
  std::vector<crn::Config> configs;
  std::vector<std::vector<int>> succ;
  std::vector<int> parent;
  std::vector<int> parent_reaction;
  bool complete = true;
};

LegacyGraph legacy_explore(const crn::Crn& crn, const crn::Config& initial,
                           std::size_t max_configs) {
  LegacyGraph graph;
  std::unordered_map<crn::Config, int, LegacyConfigHash> ids;
  ids.reserve(max_configs * 2);
  auto intern = [&](const crn::Config& c) -> int {
    const auto it = ids.find(c);
    if (it != ids.end()) return it->second;
    const int id = static_cast<int>(graph.configs.size());
    ids.emplace(c, id);
    graph.configs.push_back(c);
    graph.succ.emplace_back();
    graph.parent.push_back(-1);
    graph.parent_reaction.push_back(-1);
    return id;
  };
  std::deque<int> frontier;
  frontier.push_back(intern(initial));
  while (!frontier.empty()) {
    const int node = frontier.front();
    frontier.pop_front();
    const crn::Config current = graph.configs[static_cast<std::size_t>(node)];
    for (std::size_t j = 0; j < crn.reactions().size(); ++j) {
      const crn::Reaction& r = crn.reactions()[j];
      if (!r.applicable(current)) continue;
      crn::Config next = current;
      r.apply_in_place(next);
      const bool known = ids.find(next) != ids.end();
      if (!known && graph.configs.size() >= max_configs) {
        graph.complete = false;
        continue;
      }
      const int next_id = intern(next);
      graph.succ[static_cast<std::size_t>(node)].push_back(next_id);
      if (!known) {
        graph.parent[static_cast<std::size_t>(next_id)] = node;
        graph.parent_reaction[static_cast<std::size_t>(next_id)] =
            static_cast<int>(j);
        frontier.push_back(next_id);
      }
    }
  }
  return graph;
}

double seconds_since(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::string key_of(const std::string& label) {
  std::string key = label;
  for (char& ch : key) {
    if (ch == '/' || ch == '(' || ch == ')' || ch == ',' || ch == '-') {
      ch = '_';
    }
  }
  return key;
}

void print_artifacts() {
  struct Case {
    std::string scenario;
    fn::Point x;
    bool heavy;  ///< skipped in fast mode
  };
  // Workloads from the registry: the Theorem 5.2 circuit (the composed
  // state-space regime the verifier exists for) and the million-node
  // composition-chain proofs. The last two are the PR-5 frontier
  // workloads (~1M and ~2.6M configurations).
  const std::vector<Case> cases = {
      {"thm52/fig7", {2, 2}, false},
      {"thm52/fig7", {3, 3}, false},
      {"chain/compose-18", {8}, false},
      {"thm52/fig7", {4, 3}, true},
      {"chain/compose-24", {7}, true},
  };
  // Fast mode (ctest bench_smoke_verification_run): arena engine only, on
  // the light workloads — the records bench_compare needs, at smoke-test
  // cost. Full mode adds the legacy baseline, the heavy workloads, the
  // {1,2,4,8}-thread pool sweep, and the end-to-end proof record.
  const bool fast = std::getenv("CRNKIT_BENCH_FAST") != nullptr;
  const std::vector<int> sweep_threads = {2, 4, 8};

  std::vector<std::vector<std::string>> rows;
  std::vector<std::vector<std::string>> mt_rows;
  std::vector<bench::BenchRecord> records;
  std::vector<std::string> extra;
  {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "\"host_threads\": %u",
                  std::thread::hardware_concurrency());
    extra.emplace_back(buf);
  }

  // Touch the code paths once so the first timed case is not a cold
  // start.
  {
    const scenario::Scenario warm =
        scenario::Registry::builtin().build("fig1/min");
    (void)verify::explore(warm.crn, warm.crn.initial_configuration({8, 8}));
    if (!fast) {
      (void)legacy_explore(warm.crn, warm.crn.initial_configuration({8, 8}),
                           2'000'000);
    }
  }

  for (const Case& c : cases) {
    if (fast && c.heavy) continue;
    const scenario::Scenario s = scenario::Registry::builtin().build(
        c.scenario);
    const crn::Config initial = s.crn.initial_configuration(c.x);
    const std::string label =
        c.scenario + "(" + scenario::point_to_string(c.x) + ")";
    const std::string key = key_of(label);
    const std::size_t max_configs =
        std::max<std::size_t>(2'000'000, s.verify_max_configs);

    // Best of two runs per engine, and each engine's graph is freed
    // before the next is timed — no run is measured under another's
    // memory footprint or first-touch page faults.
    constexpr int kRuns = 2;
    std::size_t legacy_configs = 0;
    double legacy_s = 1e300;
    if (!fast) {
      for (int run = 0; run < kRuns; ++run) {
        const auto t0 = std::chrono::steady_clock::now();
        const LegacyGraph legacy =
            legacy_explore(s.crn, initial, max_configs);
        legacy_s = std::min(legacy_s, seconds_since(t0));
        legacy_configs = legacy.configs.size();
      }
    }

    std::size_t arena_configs = 0;
    std::size_t arena_edges = 0;
    std::size_t arena_bytes = 0;
    bool complete = false;
    double arena_s = 1e300;
    // One untimed run first: faults the case's pages in and trains the
    // allocator's mmap threshold, so the timed best-of measures the warm
    // steady state in fast and full mode alike (full mode used to get
    // this warmth from the legacy run as a side effect).
    (void)verify::explore(s.crn, initial,
                          verify::ExploreOptions{max_configs});
    for (int run = 0; run < kRuns; ++run) {
      const auto t0 = std::chrono::steady_clock::now();
      const auto graph = verify::explore(
          s.crn, initial, verify::ExploreOptions{max_configs});
      arena_s = std::min(arena_s, seconds_since(t0));
      arena_configs = graph.size();
      arena_edges = graph.edge_count();
      arena_bytes = graph.stats.arena_bytes;
      complete = graph.complete;
    }
    const double n = static_cast<double>(arena_configs);
    records.push_back({"arena/" + label, n / arena_s, arena_s,
                       arena_configs});
    records.push_back({"arena/" + label + "/edges",
                       static_cast<double>(arena_edges) / arena_s, arena_s,
                       arena_edges});

    // Invariant-guided exploration (the static analyzer's conservation
    // laws feeding per-species bounds + arena/hash presizing). Bounds are
    // invariants of exact exploration, so the graph is bit-identical —
    // asserted below; the delta is pure perf (skipped shard rehashes).
    const lint::InvariantGuide guide = lint::make_guide(s.crn, initial);
    verify::ExploreOptions guided_options{max_configs};
    guided_options.species_bounds = &guide.bounds;
    guided_options.expected_configs = guide.reachable_bound;
    double inv_s = 1e300;
    std::size_t inv_bytes = 0;
    for (int run = 0; run < kRuns; ++run) {
      const auto t0 = std::chrono::steady_clock::now();
      const auto graph_inv = verify::explore(s.crn, initial, guided_options);
      inv_s = std::min(inv_s, seconds_since(t0));
      inv_bytes = graph_inv.stats.arena_bytes;
      ensure(graph_inv.size() == arena_configs &&
                 graph_inv.edge_count() == arena_edges,
             "guided exploration diverged from unguided on " + label);
    }
    records.push_back({"arena-inv/" + label, n / inv_s, inv_s,
                       arena_configs});

    // The task-pool thread sweep: same workload, same budget, explicit
    // worker counts. The explorer guarantees the graphs are bit-identical
    // across the sweep; the configs/s column is the scaling story.
    std::vector<std::string> mt_row = {label, bench::fmt(arena_s)};
    char buf[96];
    if (!fast) {
      for (const int threads : sweep_threads) {
        double mt_s = 1e300;
        std::size_t mt_configs = 0;
        for (int run = 0; run < kRuns; ++run) {
          const auto t0 = std::chrono::steady_clock::now();
          const auto graph_mt = verify::explore(
              s.crn, initial,
              verify::ExploreOptions{max_configs, threads});
          mt_s = std::min(mt_s, seconds_since(t0));
          mt_configs = graph_mt.size();
        }
        records.push_back({"arena-mt" + std::to_string(threads) + "/" +
                               label,
                           static_cast<double>(mt_configs) / mt_s, mt_s,
                           mt_configs});
        std::snprintf(buf, sizeof(buf), "\"mt_speedup_%s_t%d\": %.2f",
                      key.c_str(), threads, arena_s / mt_s);
        extra.emplace_back(buf);
        mt_row.push_back(bench::fmt(arena_s / mt_s));
      }
      mt_rows.push_back(mt_row);

      // Hardware-default thread count, the `--threads 0` production
      // setting (also the record name PR-3 used, kept diffable).
      double arena_mt_s = 1e300;
      std::size_t mt_configs = 0;
      for (int run = 0; run < kRuns; ++run) {
        const auto t0 = std::chrono::steady_clock::now();
        const auto graph_mt = verify::explore(
            s.crn, initial,
            verify::ExploreOptions{max_configs, /*threads=*/0});
        arena_mt_s = std::min(arena_mt_s, seconds_since(t0));
        mt_configs = graph_mt.size();
      }
      records.push_back({"arena-mt/" + label,
                         static_cast<double>(mt_configs) / arena_mt_s,
                         arena_mt_s, mt_configs});
    }

    const double bytes_per_config = static_cast<double>(arena_bytes) / n;
    const double inv_bytes_per_config = static_cast<double>(inv_bytes) / n;
    const double speedup =
        fast ? 0.0
             : (legacy_s / static_cast<double>(legacy_configs)) /
                   (arena_s / n);
    rows.push_back({label, bench::fmt(static_cast<long long>(arena_configs)),
                    bench::fmt(static_cast<long long>(arena_edges)),
                    complete ? "complete" : "truncated",
                    fast ? "-" : bench::fmt(legacy_s), bench::fmt(arena_s),
                    fast ? "-" : bench::fmt(speedup),
                    bench::fmt(inv_s), bench::fmt(arena_s / inv_s),
                    bench::fmt(bytes_per_config),
                    bench::fmt(inv_bytes_per_config)});

    if (!fast) {
      records.push_back({"legacy/" + label,
                         static_cast<double>(legacy_configs) / legacy_s,
                         legacy_s, legacy_configs});
      std::snprintf(buf, sizeof(buf), "\"speedup_%s\": %.2f", key.c_str(),
                    speedup);
      extra.emplace_back(buf);
    }
    std::snprintf(buf, sizeof(buf), "\"peak_bytes_per_config_%s\": %.1f",
                  key.c_str(), bytes_per_config);
    extra.emplace_back(buf);
    std::snprintf(buf, sizeof(buf), "\"inv_speedup_%s\": %.2f", key.c_str(),
                  arena_s / inv_s);
    extra.emplace_back(buf);
    std::snprintf(buf, sizeof(buf),
                  "\"inv_peak_bytes_per_config_%s\": %.1f", key.c_str(),
                  inv_bytes_per_config);
    extra.emplace_back(buf);
  }

  bench::print_table(
      "Exact verification: arena explorer vs the pre-PR explorer, plus "
      "invariant-guided runs (equal max_configs; guided graphs "
      "bit-identical)",
      {"workload", "configs", "edges", "exploration", "legacy_s", "arena_s",
       "speedup", "inv_s", "inv_x", "B/config", "inv_B/cfg"},
      rows, 14);
  if (!mt_rows.empty()) {
    bench::print_table(
        "Task-pool thread scaling (speedup over 1-thread arena; graphs "
        "bit-identical across the sweep)",
        {"workload", "t1_s", "x2", "x4", "x8"}, mt_rows, 18);
  }

  // Job-submission latency: what the pool actually buys per BFS level /
  // ensemble batch. The old explorer paid a std::thread spawn+join per
  // worker per phase; the pool pays a wakeup. Measured as round-trips of
  // an 8-chunk no-op job on 2 logical threads vs spawning and joining one
  // std::thread per round (the smallest unit run_workers used to burn).
  if (!fast) {
    constexpr int kRounds = 2000;
    util::TaskPool& pool = util::TaskPool::instance();
    std::atomic<std::uint64_t> sink{0};
    // Warm the pool so worker spawn cost stays out of the loop.
    pool.parallel_for(8, 1, [&](std::size_t i) { sink += i; }, 2);
    auto t0 = std::chrono::steady_clock::now();
    for (int round = 0; round < kRounds; ++round) {
      pool.parallel_for(8, 1, [&](std::size_t i) { sink += i; }, 2);
    }
    const double pool_s = seconds_since(t0);
    t0 = std::chrono::steady_clock::now();
    for (int round = 0; round < kRounds; ++round) {
      std::thread worker([&] { sink += 1; });
      for (std::size_t i = 0; i < 8; ++i) sink += i;
      worker.join();
    }
    const double spawn_s = seconds_since(t0);
    records.push_back({"pool/job_submit", kRounds / pool_s, pool_s,
                       static_cast<std::size_t>(kRounds)});
    records.push_back({"threadspawn/job_submit", kRounds / spawn_s, spawn_s,
                       static_cast<std::size_t>(kRounds)});
    char buf[64];
    std::snprintf(buf, sizeof(buf), "\"pool_submit_speedup\": %.2f",
                  spawn_s / pool_s);
    extra.emplace_back(buf);
    std::printf("\njob submission: pool %.1f us vs thread spawn/join %.1f "
                "us (%.1fx) over %d rounds\n",
                1e6 * pool_s / kRounds, 1e6 * spawn_s / kRounds,
                spawn_s / pool_s, kRounds);
  }

  // The acceptance workloads: composition chains proven exactly at >= 1M
  // explored configurations, full SCC decision included.
  if (!fast) {
    for (const auto& proof_case :
         std::vector<std::pair<std::string, fn::Point>>{
             {"chain/compose-18", {8}}, {"chain/compose-24", {7}}}) {
      const scenario::Scenario s =
          scenario::Registry::builtin().build(proof_case.first);
      verify::StableCheckOptions options;
      if (s.verify_max_configs > 0) {
        options.max_configs = s.verify_max_configs;
      }
      const math::Int expected = (*s.reference)(proof_case.second);
      const auto t0 = std::chrono::steady_clock::now();
      const auto check = verify::check_stable_computation(
          s.crn, proof_case.second, expected, options);
      const double proof_s = seconds_since(t0);
      const std::string label =
          proof_case.first + "(" +
          scenario::point_to_string(proof_case.second) + ")";
      std::printf("\n%s: %s in %.2fs (%zu configs, %zu edges — a "
                  "stable-computation *proof* over a >1M-node "
                  "reachability graph)\n",
                  label.c_str(),
                  check.ok && check.complete ? "PROVED" : "NOT PROVED",
                  proof_s, check.num_configs, check.num_edges);
      records.push_back({"proof/" + label,
                         static_cast<double>(check.num_configs) / proof_s,
                         proof_s, check.num_configs});

      // The same proof, invariant-guided (the production `crnc verify`
      // path): verdict and graph must match exactly.
      const std::vector<lint::ConservationLaw> laws =
          lint::extract_conservation_laws(s.crn);
      verify::StableCheckOptions inv_options = options;
      inv_options.invariants = &laws;
      const auto t1 = std::chrono::steady_clock::now();
      const auto check_inv = verify::check_stable_computation(
          s.crn, proof_case.second, expected, inv_options);
      const double proof_inv_s = seconds_since(t1);
      ensure(check_inv.ok == check.ok &&
                 check_inv.num_configs == check.num_configs &&
                 check_inv.num_edges == check.num_edges,
             "guided proof diverged from unguided on " + label);
      records.push_back(
          {"proof-inv/" + label,
           static_cast<double>(check_inv.num_configs) / proof_inv_s,
           proof_inv_s, check_inv.num_configs});
      char speed_buf[64];
      std::snprintf(speed_buf, sizeof(speed_buf),
                    "\"proof_inv_speedup_%s\": %.2f", key_of(label).c_str(),
                    proof_s / proof_inv_s);
      extra.emplace_back(speed_buf);
    }
    // Kept under its PR-3 key so baseline diffs line up.
    char buf[64];
    for (const bench::BenchRecord& r : records) {
      if (r.name == "proof/chain/compose-18(8)") {
        std::snprintf(buf, sizeof(buf), "\"chain18_proof_seconds\": %.3f",
                      r.wall_seconds);
        extra.emplace_back(buf);
      }
    }
  }

  // Out-of-core proofs: the same exact verdicts under a memory budget the
  // arena cannot fit in, spilled to disk instead of truncated. Fast mode
  // spills the million-node chain; full mode adds the 2.6M- and 4.3M-node
  // chains and pins the spilled verdict against the unconstrained one.
  {
    struct OoCase {
      std::string scenario;
      fn::Point x;
      std::size_t budget_mb;
      bool heavy;
    };
    const std::vector<OoCase> oo_cases = {
        {"chain/compose-18", {8}, 8, false},
        {"chain/compose-24", {7}, 64, true},
        {"chain/compose-26", {7}, 64, true},
    };
    const std::string spill_dir = [] {
      const char* env = std::getenv("TMPDIR");
      // Segment names embed the pid, so a shared directory is safe.
      return std::string(env != nullptr ? env : "/tmp") +
             "/crnkit_bench_spill";
    }();
    for (const auto& c : oo_cases) {
      if (fast && c.heavy) continue;
      const scenario::Scenario s =
          scenario::Registry::builtin().build(c.scenario);
      verify::StableCheckOptions options;
      if (s.verify_max_configs > 0) {
        options.max_configs = s.verify_max_configs;
      }
      const math::Int expected = (*s.reference)(c.x);
      const std::string label =
          c.scenario + "(" + scenario::point_to_string(c.x) + ")";

      verify::StableCheckOptions spill_options = options;
      spill_options.spill_dir = spill_dir;
      spill_options.memory_budget_bytes = c.budget_mb << 20;
      const auto t0 = std::chrono::steady_clock::now();
      const auto spilled = verify::check_stable_computation(
          s.crn, c.x, expected, spill_options);
      const double oo_s = seconds_since(t0);
      ensure(spilled.ok && spilled.complete,
             "out-of-core proof failed on " + label);
      ensure(spilled.explore_stats.spilled,
             "out-of-core run never spilled on " + label +
                 " — budget too generous to measure anything");
      if (!fast) {
        // The spilled proof must agree with the unconstrained one on
        // everything the verdict is made of.
        const auto want = verify::check_stable_computation(
            s.crn, c.x, expected, options);
        ensure(spilled.ok == want.ok && spilled.complete == want.complete &&
                   spilled.num_configs == want.num_configs &&
                   spilled.num_edges == want.num_edges,
               "spilled proof diverged from the in-RAM proof on " + label);
      }
      std::printf("\noo_core %s: PROVED in %.2fs under a %zu MiB budget "
                  "(%zu configs, %.1f MiB spilled)\n",
                  label.c_str(), oo_s, c.budget_mb, spilled.num_configs,
                  static_cast<double>(
                      spilled.explore_stats.spill_bytes_written) /
                      (1024.0 * 1024.0));
      records.push_back({"oo_core/" + label,
                         static_cast<double>(spilled.num_configs) / oo_s,
                         oo_s, spilled.num_configs});
    }
  }

  bench::write_bench_json("verification", records, extra);
}

void BM_ExploreMin(benchmark::State& state) {
  const scenario::Scenario s = scenario::Registry::builtin().build("fig1/min");
  const Int n = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        verify::explore(s.crn, s.crn.initial_configuration({n, n})).size());
  }
}
BENCHMARK(BM_ExploreMin)->Arg(8)->Arg(64)->Arg(512);

void BM_ExploreMax(benchmark::State& state) {
  const scenario::Scenario s = scenario::Registry::builtin().build("fig1/max");
  const Int n = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        verify::explore(s.crn, s.crn.initial_configuration({n, n})).size());
  }
}
BENCHMARK(BM_ExploreMax)->Arg(2)->Arg(4)->Arg(6)->Unit(benchmark::kMillisecond);

void BM_StableCheckCircuit(benchmark::State& state) {
  const scenario::Scenario s =
      scenario::Registry::builtin().build("thm52/fig7");
  const Int n = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        verify::check_stable_computation(s.crn, {n, n},
                                         (*s.reference)({n, n}))
            .ok);
  }
}
BENCHMARK(BM_StableCheckCircuit)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

void BM_ExploreCircuitParallel(benchmark::State& state) {
  const scenario::Scenario s =
      scenario::Registry::builtin().build("thm52/fig7");
  verify::ExploreOptions options;
  options.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        verify::explore(s.crn, s.crn.initial_configuration({2, 2}), options)
            .size());
  }
}
BENCHMARK(BM_ExploreCircuitParallel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

CRNKIT_BENCH_MAIN(print_artifacts)
