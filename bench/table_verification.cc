// T4 (extension table): cost of *proving* stable computation — and the
// perf trajectory of the exact-verification core.
//
// The arena-backed explorer (verify/config_store.h + reachability.cc:
// flat 32-bit arena, sharded open-addressing interning with incremental
// Zobrist hashing, compiled delta kernels, CSR edges) is measured against
// `legacy_explore`, a verbatim port of the pre-PR explorer
// (std::unordered_map over heap-allocated crn::Config vectors, term-list
// reaction application) on the same workloads at the same node budget.
// Emits BENCH_verification.json (configs/sec, edges/sec, peak
// bytes/config, speedups) so CI diffs the verifier's throughput like the
// SSA engine's.
#include <chrono>
#include <deque>
#include <unordered_map>

#include "bench_table.h"
#include "scenario/registry.h"
#include "verify/reachability.h"
#include "verify/stable.h"

namespace {

using namespace crnkit;
using math::Int;

// --- the pre-PR explorer, kept verbatim as the measurement baseline ---

struct LegacyConfigHash {
  std::size_t operator()(const crn::Config& c) const {
    std::size_t h = 0xcbf29ce484222325ULL;
    for (const math::Int v : c) {
      h ^= static_cast<std::size_t>(v) + 0x9e3779b97f4a7c15ULL + (h << 6) +
           (h >> 2);
    }
    return h;
  }
};

struct LegacyGraph {
  std::vector<crn::Config> configs;
  std::vector<std::vector<int>> succ;
  std::vector<int> parent;
  std::vector<int> parent_reaction;
  bool complete = true;
};

LegacyGraph legacy_explore(const crn::Crn& crn, const crn::Config& initial,
                           std::size_t max_configs) {
  LegacyGraph graph;
  std::unordered_map<crn::Config, int, LegacyConfigHash> ids;
  ids.reserve(max_configs * 2);
  auto intern = [&](const crn::Config& c) -> int {
    const auto it = ids.find(c);
    if (it != ids.end()) return it->second;
    const int id = static_cast<int>(graph.configs.size());
    ids.emplace(c, id);
    graph.configs.push_back(c);
    graph.succ.emplace_back();
    graph.parent.push_back(-1);
    graph.parent_reaction.push_back(-1);
    return id;
  };
  std::deque<int> frontier;
  frontier.push_back(intern(initial));
  while (!frontier.empty()) {
    const int node = frontier.front();
    frontier.pop_front();
    const crn::Config current = graph.configs[static_cast<std::size_t>(node)];
    for (std::size_t j = 0; j < crn.reactions().size(); ++j) {
      const crn::Reaction& r = crn.reactions()[j];
      if (!r.applicable(current)) continue;
      crn::Config next = current;
      r.apply_in_place(next);
      const bool known = ids.find(next) != ids.end();
      if (!known && graph.configs.size() >= max_configs) {
        graph.complete = false;
        continue;
      }
      const int next_id = intern(next);
      graph.succ[static_cast<std::size_t>(node)].push_back(next_id);
      if (!known) {
        graph.parent[static_cast<std::size_t>(next_id)] = node;
        graph.parent_reaction[static_cast<std::size_t>(next_id)] =
            static_cast<int>(j);
        frontier.push_back(next_id);
      }
    }
  }
  return graph;
}

double seconds_since(const std::chrono::steady_clock::time_point& t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void print_artifacts() {
  struct Case {
    std::string scenario;
    fn::Point x;
  };
  // Workloads from the registry: the Theorem 5.2 circuit (the composed
  // state-space regime the verifier exists for) and the million-node
  // composition-chain proof.
  const std::vector<Case> cases = {
      {"thm52/fig7", {2, 2}},
      {"thm52/fig7", {3, 3}},
      {"chain/compose-18", {8}},
  };

  std::vector<std::vector<std::string>> rows;
  std::vector<bench::BenchRecord> records;
  std::vector<std::string> extra;
  const std::size_t max_configs = 2'000'000;

  // Touch the code paths once so the first timed case is not a cold
  // start.
  {
    const scenario::Scenario warm =
        scenario::Registry::builtin().build("fig1/min");
    (void)verify::explore(warm.crn, warm.crn.initial_configuration({8, 8}));
    (void)legacy_explore(warm.crn, warm.crn.initial_configuration({8, 8}),
                         max_configs);
  }

  for (const Case& c : cases) {
    const scenario::Scenario s = scenario::Registry::builtin().build(
        c.scenario);
    const crn::Config initial = s.crn.initial_configuration(c.x);
    const std::string label =
        c.scenario + "(" + scenario::point_to_string(c.x) + ")";

    // Best of two runs per engine, and each engine's graph is freed
    // before the next is timed — no run is measured under another's
    // memory footprint or first-touch page faults.
    constexpr int kRuns = 2;
    std::size_t legacy_configs = 0;
    double legacy_s = 1e300;
    for (int run = 0; run < kRuns; ++run) {
      const auto t0 = std::chrono::steady_clock::now();
      const LegacyGraph legacy = legacy_explore(s.crn, initial, max_configs);
      legacy_s = std::min(legacy_s, seconds_since(t0));
      legacy_configs = legacy.configs.size();
    }

    std::size_t arena_configs = 0;
    std::size_t arena_edges = 0;
    std::size_t arena_bytes = 0;
    bool complete = false;
    double arena_s = 1e300;
    for (int run = 0; run < kRuns; ++run) {
      const auto t0 = std::chrono::steady_clock::now();
      const auto graph = verify::explore(
          s.crn, initial, verify::ExploreOptions{max_configs});
      arena_s = std::min(arena_s, seconds_since(t0));
      arena_configs = graph.size();
      arena_edges = graph.edge_count();
      arena_bytes = graph.stats.arena_bytes;
      complete = graph.complete;
    }

    std::size_t mt_configs = 0;
    double arena_mt_s = 1e300;
    for (int run = 0; run < kRuns; ++run) {
      const auto t0 = std::chrono::steady_clock::now();
      const auto graph_mt = verify::explore(
          s.crn, initial, verify::ExploreOptions{max_configs, /*threads=*/0});
      arena_mt_s = std::min(arena_mt_s, seconds_since(t0));
      mt_configs = graph_mt.size();
    }

    const double n = static_cast<double>(arena_configs);
    const double speedup =
        (legacy_s / static_cast<double>(legacy_configs)) / (arena_s / n);
    const double bytes_per_config = static_cast<double>(arena_bytes) / n;
    rows.push_back({label, bench::fmt(static_cast<long long>(arena_configs)),
                    bench::fmt(static_cast<long long>(arena_edges)),
                    complete ? "complete" : "truncated",
                    bench::fmt(legacy_s), bench::fmt(arena_s),
                    bench::fmt(speedup), bench::fmt(bytes_per_config)});

    records.push_back({"legacy/" + label,
                       static_cast<double>(legacy_configs) / legacy_s,
                       legacy_s, legacy_configs});
    records.push_back({"arena/" + label, n / arena_s, arena_s,
                       arena_configs});
    records.push_back({"arena-mt/" + label,
                       static_cast<double>(mt_configs) / arena_mt_s,
                       arena_mt_s, mt_configs});
    records.push_back({"arena/" + label + "/edges",
                       static_cast<double>(arena_edges) / arena_s, arena_s,
                       arena_edges});

    std::string key = label;
    for (char& ch : key) {
      if (ch == '/' || ch == '(' || ch == ')' || ch == ',' || ch == '-') {
        ch = '_';
      }
    }
    char buf[96];
    std::snprintf(buf, sizeof(buf), "\"speedup_%s\": %.2f", key.c_str(),
                  speedup);
    extra.emplace_back(buf);
    std::snprintf(buf, sizeof(buf), "\"peak_bytes_per_config_%s\": %.1f",
                  key.c_str(), bytes_per_config);
    extra.emplace_back(buf);
  }

  bench::print_table(
      "Exact verification: arena explorer vs the pre-PR explorer "
      "(equal max_configs)",
      {"workload", "configs", "edges", "exploration", "legacy_s", "arena_s",
       "speedup", "B/config"},
      rows, 14);

  // The acceptance workload: a composition chain proven exactly at >= 1M
  // explored configurations, full SCC decision included.
  {
    const scenario::Scenario s =
        scenario::Registry::builtin().build("chain/compose-18");
    const auto t0 = std::chrono::steady_clock::now();
    const auto check = verify::check_stable_computation(s.crn, {8}, 8);
    const double proof_s = seconds_since(t0);
    std::printf("\nchain/compose-18 @ x=8: %s in %.2fs (%zu configs, %zu "
                "edges — a stable-computation *proof* over a >1M-node "
                "reachability graph)\n",
                check.ok && check.complete ? "PROVED" : "NOT PROVED",
                proof_s, check.num_configs, check.num_edges);
    records.push_back({"proof/chain/compose-18(8)",
                       static_cast<double>(check.num_configs) / proof_s,
                       proof_s, check.num_configs});
    char buf[64];
    std::snprintf(buf, sizeof(buf), "\"chain18_proof_seconds\": %.3f",
                  proof_s);
    extra.emplace_back(buf);
  }

  bench::write_bench_json("verification", records, extra);
}

void BM_ExploreMin(benchmark::State& state) {
  const scenario::Scenario s = scenario::Registry::builtin().build("fig1/min");
  const Int n = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        verify::explore(s.crn, s.crn.initial_configuration({n, n})).size());
  }
}
BENCHMARK(BM_ExploreMin)->Arg(8)->Arg(64)->Arg(512);

void BM_ExploreMax(benchmark::State& state) {
  const scenario::Scenario s = scenario::Registry::builtin().build("fig1/max");
  const Int n = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        verify::explore(s.crn, s.crn.initial_configuration({n, n})).size());
  }
}
BENCHMARK(BM_ExploreMax)->Arg(2)->Arg(4)->Arg(6)->Unit(benchmark::kMillisecond);

void BM_StableCheckCircuit(benchmark::State& state) {
  const scenario::Scenario s =
      scenario::Registry::builtin().build("thm52/fig7");
  const Int n = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        verify::check_stable_computation(s.crn, {n, n},
                                         (*s.reference)({n, n}))
            .ok);
  }
}
BENCHMARK(BM_StableCheckCircuit)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

void BM_ExploreCircuitParallel(benchmark::State& state) {
  const scenario::Scenario s =
      scenario::Registry::builtin().build("thm52/fig7");
  verify::ExploreOptions options;
  options.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        verify::explore(s.crn, s.crn.initial_configuration({2, 2}), options)
            .size());
  }
}
BENCHMARK(BM_ExploreCircuitParallel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

CRNKIT_BENCH_MAIN(print_artifacts)
