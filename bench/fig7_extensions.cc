// E7 / Figure 7: the three-region motivating example of Section 7.1 —
// determined regions D1, D2 with unique extensions g1 = x2+1, g2 = x1+1
// (Lemma 7.7), the diagonal strip U whose averaged extension is
// gU = ceil((x1+x2)/2) (Lemma 7.16), and f = min(g1, g2, gU).
#include "analysis/eventual_min.h"
#include "analysis/extension.h"
#include "bench_table.h"
#include "fn/examples.h"
#include "fn/properties.h"

namespace {

using namespace crnkit;
using math::Int;

analysis::AnalysisInput input() {
  return analysis::AnalysisInput{fn::examples::fig7(),
                                 fn::examples::fig7_arrangement(), 1, 12};
}

void print_artifacts() {
  const auto in = input();
  const auto regions = analysis::decompose(in);
  std::vector<std::vector<std::string>> rrows;
  for (const auto& info : regions) {
    rrows.push_back({info.region.key(),
                     bench::fmt(static_cast<long long>(info.cone_dimension)),
                     info.determined ? "determined" : "under-det.",
                     info.eventual ? "eventual" : "finite"});
  }
  bench::print_table("Fig 7: regions of f (signs over x1-x2>=1, x2-x1>=1)",
                     {"region", "cone dim", "class", "eventual"}, rrows, 14);

  const auto result = analysis::extract_eventual_min(in);
  std::vector<std::vector<std::string>> erows;
  for (const auto& g : result.parts) {
    erows.push_back({g.name(), math::to_string(g.gradient()),
                     bench::fmt(static_cast<long long>(g.period()))});
  }
  bench::print_table("Fig 7: extracted quilt-affine extensions",
                     {"extension", "gradient", "period"}, erows, 16);

  // The f = min(g1, g2, gU) surface (Fig 7d): values and the achieving part.
  const fn::MinOfQuiltAffine m(result.parts);
  std::vector<std::vector<std::string>> surface;
  for (Int x2 = 0; x2 <= 6; ++x2) {
    std::vector<std::string> row{"x2=" + std::to_string(x2)};
    for (Int x1 = 0; x1 <= 6; ++x1) {
      row.push_back(bench::fmt(m(fn::Point{x1, x2})));
    }
    surface.push_back(std::move(row));
  }
  std::vector<std::string> header{""};
  for (Int x1 = 0; x1 <= 6; ++x1) header.push_back("x1=" + std::to_string(x1));
  bench::print_table("Fig 7: f = min(g1, g2, gU)", header, surface, 7);

  const auto disagreement = fn::find_disagreement(
      m.as_function(), fn::examples::fig7(), 12);
  std::printf("\nmin of extensions equals f on [0,12]^2: %s\n",
              disagreement ? "NO" : "yes");
  // Each extension dominates f (Lemma 7.9 / 7.16).
  for (const auto& g : result.parts) {
    const auto violation =
        fn::find_domination_violation(fn::examples::fig7(), g.as_function(),
                                      {0, 0}, 12);
    std::printf("extension %s dominates f on [0,12]^2: %s\n",
                g.name().c_str(), violation ? "NO" : "yes");
  }
}

void BM_DecomposeFig7(benchmark::State& state) {
  const auto in = input();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::decompose(in).size());
  }
}
BENCHMARK(BM_DecomposeFig7)->Unit(benchmark::kMillisecond);

void BM_ExtractEventualMinFig7(benchmark::State& state) {
  const auto in = input();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::extract_eventual_min(in).ok);
  }
}
BENCHMARK(BM_ExtractEventualMinFig7)->Unit(benchmark::kMillisecond);

void BM_DeterminedExtensionFig7(benchmark::State& state) {
  const auto in = input();
  const auto regions = analysis::decompose(in);
  std::size_t det = 0;
  for (std::size_t r = 0; r < regions.size(); ++r) {
    if (regions[r].determined) det = r;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analysis::determined_extension(in, regions[det]).period());
  }
}
BENCHMARK(BM_DeterminedExtensionFig7)->Unit(benchmark::kMillisecond);

}  // namespace

CRNKIT_BENCH_MAIN(print_artifacts)
