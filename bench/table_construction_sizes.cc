// T1 (extension table): construction sizes. The paper gives the
// constructions but not a size census; an artifact release would report
// one. Species/reaction counts:
//   - Lemma 6.1 (quilt-affine): ~p^d leader states, d*p^d reactions
//   - Theorem 3.1 (1D): n + p states
//   - Theorem 9.2 (leaderless): O((n+p)^2) merge reactions
//   - Theorem 5.2 (full): modules for clamps, m quilts, d*n restrictions
#include "bench_table.h"
#include "compile/leaderless.h"
#include "compile/oned.h"
#include "compile/quilt.h"
#include "compile/theorem52.h"
#include "fn/examples.h"

namespace {

using namespace crnkit;
using math::Int;
using math::Rational;

fn::QuiltAffine make_quilt(int d, Int p) {
  // gradient (1, 1/p, ...) with zero offsets except a wiggle to keep it
  // integer-valued: use gradient components 1 and offsets 0 — simple and
  // valid for any (d, p): g(x) = sum x_i + B, B = 0.
  math::RatVec gradient(static_cast<std::size_t>(d), Rational(1));
  const Int classes = math::checked_pow(p, d);
  std::vector<Rational> offsets(static_cast<std::size_t>(classes),
                                Rational(0));
  return fn::QuiltAffine(std::move(gradient), p, std::move(offsets),
                         "sum_d" + std::to_string(d) + "_p" +
                             std::to_string(p));
}

void print_artifacts() {
  // Lemma 6.1 sizes over (d, p).
  std::vector<std::vector<std::string>> rows;
  for (const int d : {1, 2, 3}) {
    for (const Int p : {1, 2, 3, 4}) {
      const crn::Crn crn = compile::compile_quilt_affine(make_quilt(d, p));
      rows.push_back({bench::fmt(static_cast<long long>(d)), bench::fmt(p),
                      bench::fmt(static_cast<long long>(crn.species_count())),
                      bench::fmt(static_cast<long long>(
                          crn.reactions().size()))});
    }
  }
  bench::print_table("Lemma 6.1 construction size vs (d, p)",
                     {"d", "p", "species", "reactions"}, rows, 12);

  // Theorem 3.1 vs Theorem 9.2 sizes on the superadditive suite.
  std::vector<std::vector<std::string>> rows2;
  for (const auto& f : fn::examples::oned_superadditive_suite()) {
    const crn::Crn with_leader = compile::compile_oned(f);
    const crn::Crn leaderless = compile::compile_leaderless_oned(f);
    rows2.push_back(
        {f.name(),
         bench::fmt(static_cast<long long>(with_leader.species_count())),
         bench::fmt(static_cast<long long>(with_leader.reactions().size())),
         bench::fmt(static_cast<long long>(leaderless.species_count())),
         bench::fmt(static_cast<long long>(leaderless.reactions().size()))});
  }
  bench::print_table(
      "Theorem 3.1 (leader) vs Theorem 9.2 (leaderless) sizes",
      {"f", "3.1 spc", "3.1 rxn", "9.2 spc", "9.2 rxn"}, rows2, 18);

  // Theorem 5.2 sizes vs threshold n for the fig7 function.
  std::vector<std::vector<std::string>> rows3;
  for (const Int n : {1, 2, 3, 4}) {
    compile::ObliviousSpec spec{fn::examples::fig7(), n,
                                fn::examples::fig7_extensions(), {}};
    const crn::Crn crn = compile::compile_theorem52(spec);
    rows3.push_back({bench::fmt(n),
                     bench::fmt(static_cast<long long>(crn.species_count())),
                     bench::fmt(static_cast<long long>(
                         crn.reactions().size()))});
  }
  bench::print_table("Theorem 5.2 composed size vs threshold n (fig7)",
                     {"n", "species", "reactions"}, rows3, 12);
}

void BM_CompileQuiltVsPeriod(benchmark::State& state) {
  const fn::QuiltAffine g = make_quilt(2, state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        compile::compile_quilt_affine(g).species_count());
  }
}
BENCHMARK(BM_CompileQuiltVsPeriod)->Arg(2)->Arg(4)->Arg(6);

void BM_CompileLeaderless(benchmark::State& state) {
  const auto suite = fn::examples::oned_superadditive_suite();
  const auto& f = suite[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        compile::compile_leaderless_oned(f).species_count());
  }
}
BENCHMARK(BM_CompileLeaderless)->DenseRange(0, 4);

void BM_CompileTheorem52VsThreshold(benchmark::State& state) {
  compile::ObliviousSpec spec{fn::examples::fig7(), state.range(0),
                              fn::examples::fig7_extensions(), {}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        compile::compile_theorem52(spec).species_count());
  }
}
BENCHMARK(BM_CompileTheorem52VsThreshold)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

CRNKIT_BENCH_MAIN(print_artifacts)
