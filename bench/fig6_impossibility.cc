// E6 / Figure 6 (+ E9 / Equation (2)): Lemma 4.1 applied to max — the
// contradiction family a_i = (i,0), Delta_ij = (0,j) — with the inequality
// table the figure illustrates, the automatic witness search, and the
// Equation (2) counterexample's diagnosis by the analysis pipeline.
#include "analysis/eventual_min.h"
#include "bench_table.h"
#include "fn/examples.h"
#include "verify/witness.h"

namespace {

using namespace crnkit;
using math::Int;

void print_artifacts() {
  const auto max2 = fn::examples::max2();

  // The Lemma 4.1 inequality table for the paper's family.
  std::vector<std::vector<std::string>> rows;
  for (Int i = 1; i <= 5; ++i) {
    for (Int j = i + 1; j <= 6; ++j) {
      const Int lhs = max2(fn::Point{i, j}) - max2(fn::Point{i, 0});
      const Int rhs = max2(fn::Point{j, j}) - max2(fn::Point{j, 0});
      rows.push_back({bench::fmt(i), bench::fmt(j), bench::fmt(lhs),
                      bench::fmt(rhs), lhs > rhs ? "yes" : "NO"});
    }
  }
  bench::print_table(
      "Fig 6: Lemma 4.1 on max with a_i=(i,0), Delta_ij=(0,j): "
      "f(a_i+D)-f(a_i) > f(a_j+D)-f(a_j)",
      {"i", "j", "lhs", "rhs", "strict?"}, rows, 10);

  // Witness search across the example functions.
  std::vector<std::vector<std::string>> verdicts;
  for (const auto& f :
       {fn::examples::max2(), fn::examples::eq2_counterexample(),
        fn::examples::min2(), fn::examples::fig4a(), fn::examples::fig7()}) {
    const auto witness = verify::find_lemma41_witness(f);
    verdicts.push_back(
        {f.name(), witness ? "found" : "none",
         witness ? witness->to_string() : "(consistent with oblivious)"});
  }
  bench::print_table("Lemma 4.1 automatic witness search",
                     {"f", "witness", "detail"}, verdicts, 16);

  // Equation (2) diagnosed structurally (Lemma 7.20 path).
  analysis::AnalysisInput eq2{fn::examples::eq2_counterexample(),
                              fn::examples::fig7_arrangement(), 1, 12};
  const auto result = analysis::extract_eventual_min(eq2);
  std::printf("\nSection 7 pipeline on eq (2): %s\n",
              result.summary().c_str());
}

void BM_CheckLinearFamilyMax(benchmark::State& state) {
  const auto max2 = fn::examples::max2();
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify::check_linear_family(
        max2, {1, 0}, {0, 1}, static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_CheckLinearFamilyMax)->Arg(8)->Arg(32)->Arg(128);

void BM_WitnessSearchMax(benchmark::State& state) {
  const auto max2 = fn::examples::max2();
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify::find_lemma41_witness(max2));
  }
}
BENCHMARK(BM_WitnessSearchMax)->Unit(benchmark::kMillisecond);

void BM_WitnessSearchMinNoWitness(benchmark::State& state) {
  const auto min2 = fn::examples::min2();
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify::find_lemma41_witness(min2));
  }
}
BENCHMARK(BM_WitnessSearchMinNoWitness)->Unit(benchmark::kMillisecond);

}  // namespace

CRNKIT_BENCH_MAIN(print_artifacts)
