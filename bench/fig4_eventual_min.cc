// E4 / Figure 4: (a) a 2D obliviously-computable function with arbitrary
// finite behavior below n = (4,4), eventual min-of-3-quilt-affine behavior
// above, and 1D quilt-affine rows/columns on the boundary; (b) its
// infinity-scaling (the continuous surface of [9]).
#include "bench_table.h"
#include "compile/theorem52.h"
#include "cont/scaling.h"
#include "fn/examples.h"
#include "verify/simcheck.h"

namespace {

using namespace crnkit;
using math::Int;
using math::Rational;

void print_artifacts() {
  const auto f = fn::examples::fig4a();
  const auto eventual = fn::examples::fig4a_eventual();

  // (a) The surface, annotated with the regime of each point.
  std::vector<std::vector<std::string>> rows;
  for (Int x2 = 0; x2 <= 8; ++x2) {
    std::vector<std::string> row{"x2=" + std::to_string(x2)};
    for (Int x1 = 0; x1 <= 8; ++x1) {
      const fn::Point x{x1, x2};
      std::string cell = bench::fmt(f(x));
      if (x1 >= 4 && x2 >= 4) {
        cell += "*";  // eventual region: f = min(g1, g2, g3)
      } else if (f(x) != eventual(x)) {
        cell += "!";  // finite-region perturbation
      }
      row.push_back(cell);
    }
    rows.push_back(std::move(row));
  }
  std::vector<std::string> header{""};
  for (Int x1 = 0; x1 <= 8; ++x1) header.push_back("x1=" + std::to_string(x1));
  bench::print_table(
      "Fig 4a: f (* = eventual min-of-quilt-affine region, ! = finite "
      "perturbation)",
      header, rows, 7);

  // (b) The scaling surface along rays (Fig 4b).
  const cont::PiecewiseLinearMin fhat = cont::scaling_of(eventual);
  std::vector<std::vector<std::string>> srows;
  for (const auto& z : std::vector<math::RatVec>{
           {Rational(1), Rational(0)},
           {Rational(1), Rational(1, 2)},
           {Rational(1), Rational(1)},
           {Rational(1, 2), Rational(1)},
           {Rational(0), Rational(1)}}) {
    const double numeric = cont::scaling_estimate(
        f, {z[0].to_double(), z[1].to_double()}, 4096.0);
    srows.push_back({math::to_string(z), fhat(z).to_string(),
                     bench::fmt(numeric)});
  }
  bench::print_table("Fig 4b: infinity-scaling fhat = min(2z1+z2, z1+2z2, "
                     "z1+z2) along rays",
                     {"z", "analytic", "f(4096 z)/4096"}, srows, 16);
}

void BM_CompileTheorem52Fig4a(benchmark::State& state) {
  const compile::ObliviousSpec spec{fn::examples::fig4a(), 4,
                                    fn::examples::fig4a_eventual().parts(),
                                    {}};
  for (auto _ : state) {
    const crn::Crn crn = compile::compile_theorem52(spec);
    benchmark::DoNotOptimize(crn.species_count());
  }
}
BENCHMARK(BM_CompileTheorem52Fig4a)->Unit(benchmark::kMillisecond);

void BM_SimCheckFig4aPoint(benchmark::State& state) {
  const compile::ObliviousSpec spec{fn::examples::fig4a(), 4,
                                    fn::examples::fig4a_eventual().parts(),
                                    {}};
  const crn::Crn crn = compile::compile_theorem52(spec);
  for (auto _ : state) {
    const auto result = verify::sim_check_point(
        crn, fn::examples::fig4a(), {6, 7}, verify::SimCheckOptions{1});
    benchmark::DoNotOptimize(result.ok);
  }
}
BENCHMARK(BM_SimCheckFig4aPoint)->Unit(benchmark::kMillisecond);

}  // namespace

CRNKIT_BENCH_MAIN(print_artifacts)
