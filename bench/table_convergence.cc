// T2 (extension table): convergence time of compiled CRNs under the
// population-protocol pair scheduler. Leader-driven constructions
// (Theorems 3.1 / 6.1) absorb inputs sequentially, so expected parallel
// time grows superlinearly in n — the cost of the paper's leader-based
// generality (cf. Section 10's discussion of time).
//
// Trials run through the batched EnsembleRunner (population method): one
// compile per construction, seeded per-trajectory streams, all cores.
// Emits BENCH_convergence.json with aggregate interactions/sec per case.
#include "bench_table.h"
#include "compile/leaderless.h"
#include "compile/oned.h"
#include "crn/bimolecular.h"
#include "fn/examples.h"
#include "sim/ensemble.h"

namespace {

using namespace crnkit;
using math::Int;

struct ConvergencePoint {
  double mean_parallel_time = 0.0;
  double interactions_per_sec = 0.0;
  double wall_seconds = 0.0;
  std::uint64_t interactions = 0;
};

ConvergencePoint mean_parallel_time(const sim::EnsembleRunner& runner, Int x,
                                    int trials) {
  sim::EnsembleOptions options;
  options.trajectories = trials;
  options.seed = static_cast<std::uint64_t>(1000 + 31 * x);
  options.method = sim::EnsembleMethod::kPopulation;
  const auto batch = runner.run_for_input({x}, options);
  return {batch.time_stats.mean(), batch.events_per_second(),
          batch.wall_seconds, batch.total_events};
}

void print_artifacts() {
  const auto f = fn::examples::floor_3x_over_2();
  const crn::Crn leader_crn =
      crn::to_bimolecular(compile::compile_oned(f));
  const crn::Crn leaderless_crn =
      crn::to_bimolecular(compile::compile_leaderless_oned(f));
  const sim::EnsembleRunner leader_runner(leader_crn);
  const sim::EnsembleRunner leaderless_runner(leaderless_crn);

  std::vector<std::vector<std::string>> rows;
  std::vector<bench::BenchRecord> records;
  for (const Int n : {8, 16, 32, 64, 128}) {
    const ConvergencePoint leader = mean_parallel_time(leader_runner, n, 5);
    const ConvergencePoint leaderless =
        mean_parallel_time(leaderless_runner, n, 5);
    rows.push_back({bench::fmt(n), bench::fmt(leader.mean_parallel_time),
                    bench::fmt(leader.mean_parallel_time /
                               static_cast<double>(n)),
                    bench::fmt(leaderless.mean_parallel_time),
                    bench::fmt(leaderless.mean_parallel_time /
                               static_cast<double>(n))});
    records.push_back({"leader/n=" + std::to_string(n),
                       leader.interactions_per_sec, leader.wall_seconds,
                       leader.interactions});
    records.push_back({"leaderless/n=" + std::to_string(n),
                       leaderless.interactions_per_sec,
                       leaderless.wall_seconds, leaderless.interactions});
  }
  bench::print_table(
      "Parallel time to silence for floor(3x/2): Theorem 3.1 (leader) vs "
      "Theorem 9.2 (leaderless)",
      {"n", "leader", "leader/n", "leaderless", "ldrless/n"}, rows, 13);
  std::printf("\nExpected shape: leader-driven time grows superlinearly "
              "(the single leader is a sequential bottleneck); the "
              "leaderless merge cascade is faster per input.\n");
  bench::write_bench_json("convergence", records);
}

void BM_PopulationLeader(benchmark::State& state) {
  const crn::Crn bi = crn::to_bimolecular(
      compile::compile_oned(fn::examples::floor_3x_over_2()));
  const sim::EnsembleRunner runner(bi);
  const Int n = state.range(0);
  sim::EnsembleOptions options;
  options.trajectories = 4;
  options.method = sim::EnsembleMethod::kPopulation;
  options.seed = 7;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        runner.run_for_input({n}, options).total_events);
  }
  state.SetItemsProcessed(state.iterations() * 4 * n);
}
BENCHMARK(BM_PopulationLeader)->Arg(16)->Arg(64)->Arg(256);

void BM_PopulationLeaderless(benchmark::State& state) {
  const crn::Crn bi = crn::to_bimolecular(
      compile::compile_leaderless_oned(fn::examples::floor_3x_over_2()));
  const sim::EnsembleRunner runner(bi);
  const Int n = state.range(0);
  sim::EnsembleOptions options;
  options.trajectories = 4;
  options.method = sim::EnsembleMethod::kPopulation;
  options.seed = 7;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        runner.run_for_input({n}, options).total_events);
  }
  state.SetItemsProcessed(state.iterations() * 4 * n);
}
BENCHMARK(BM_PopulationLeaderless)->Arg(16)->Arg(64)->Arg(256);

}  // namespace

CRNKIT_BENCH_MAIN(print_artifacts)
