// T2 (extension table): convergence time of compiled CRNs under the
// population-protocol pair scheduler. Leader-driven constructions
// (Theorems 3.1 / 6.1) absorb inputs sequentially, so expected parallel
// time grows superlinearly in n — the cost of the paper's leader-based
// generality (cf. Section 10's discussion of time).
#include "bench_table.h"
#include "compile/leaderless.h"
#include "compile/oned.h"
#include "crn/bimolecular.h"
#include "fn/examples.h"
#include "sim/population.h"

namespace {

using namespace crnkit;
using math::Int;

double mean_parallel_time(const crn::Crn& bi, Int x, int trials) {
  double total = 0.0;
  for (int t = 0; t < trials; ++t) {
    sim::Rng rng(static_cast<std::uint64_t>(1000 + 31 * x + t));
    const auto run =
        sim::run_population(bi, bi.initial_configuration({x}), rng);
    total += run.parallel_time;
  }
  return total / trials;
}

void print_artifacts() {
  const auto f = fn::examples::floor_3x_over_2();
  const crn::Crn leader_crn =
      crn::to_bimolecular(compile::compile_oned(f));
  const crn::Crn leaderless_crn =
      crn::to_bimolecular(compile::compile_leaderless_oned(f));

  std::vector<std::vector<std::string>> rows;
  for (const Int n : {8, 16, 32, 64, 128}) {
    const double t_leader = mean_parallel_time(leader_crn, n, 5);
    const double t_leaderless = mean_parallel_time(leaderless_crn, n, 5);
    rows.push_back({bench::fmt(n), bench::fmt(t_leader),
                    bench::fmt(t_leader / static_cast<double>(n)),
                    bench::fmt(t_leaderless),
                    bench::fmt(t_leaderless / static_cast<double>(n))});
  }
  bench::print_table(
      "Parallel time to silence for floor(3x/2): Theorem 3.1 (leader) vs "
      "Theorem 9.2 (leaderless)",
      {"n", "leader", "leader/n", "leaderless", "ldrless/n"}, rows, 13);
  std::printf("\nExpected shape: leader-driven time grows superlinearly "
              "(the single leader is a sequential bottleneck); the "
              "leaderless merge cascade is faster per input.\n");
}

void BM_PopulationLeader(benchmark::State& state) {
  const crn::Crn bi = crn::to_bimolecular(
      compile::compile_oned(fn::examples::floor_3x_over_2()));
  const Int n = state.range(0);
  for (auto _ : state) {
    sim::Rng rng(7);
    const auto run =
        sim::run_population(bi, bi.initial_configuration({n}), rng);
    benchmark::DoNotOptimize(run.interactions);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PopulationLeader)->Arg(16)->Arg(64)->Arg(256);

void BM_PopulationLeaderless(benchmark::State& state) {
  const crn::Crn bi = crn::to_bimolecular(
      compile::compile_leaderless_oned(fn::examples::floor_3x_over_2()));
  const Int n = state.range(0);
  for (auto _ : state) {
    sim::Rng rng(7);
    const auto run =
        sim::run_population(bi, bi.initial_configuration({n}), rng);
    benchmark::DoNotOptimize(run.interactions);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PopulationLeaderless)->Arg(16)->Arg(64)->Arg(256);

}  // namespace

CRNKIT_BENCH_MAIN(print_artifacts)
