// E3 / Figure 3: quilt-affine functions — (a) the 1D floor(3x/2) =
// (3/2)x + B(x mod 2) series and (b) the 2D "bumpy quilt"
// g = (1,2).x + B(x mod 3) surface — together with their Lemma 6.1
// compiled CRNs verified against the exact functions.
#include "bench_table.h"
#include "compile/quilt.h"
#include "fn/examples.h"
#include "verify/stable.h"

namespace {

using namespace crnkit;
using math::Int;

void print_artifacts() {
  // (a) 1D series.
  const fn::QuiltAffine g1 = fn::examples::fig3a_quilt();
  std::vector<std::vector<std::string>> rows1;
  const crn::Crn crn1 = compile::compile_quilt_affine(g1);
  for (Int x = 0; x <= 12; ++x) {
    rows1.push_back(
        {bench::fmt(x), bench::fmt(g1(fn::Point{x})),
         bench::fmt((3 * x) / 2),
         verify::check_stable_computation(crn1, {x}, g1(fn::Point{x})).ok
             ? "proved"
             : "FAIL"});
  }
  bench::print_table("Fig 3a: floor(3x/2) = (3/2)x + B(x mod 2)",
                     {"x", "g(x)", "floor(3x/2)", "Lemma 6.1 CRN"}, rows1,
                     14);

  // (b) 2D surface.
  const fn::QuiltAffine g2 = fn::examples::fig3b_quilt();
  std::vector<std::vector<std::string>> rows2;
  for (Int x2 = 0; x2 <= 6; ++x2) {
    std::vector<std::string> row{"x2=" + std::to_string(x2)};
    for (Int x1 = 0; x1 <= 6; ++x1) {
      row.push_back(bench::fmt(g2(fn::Point{x1, x2})));
    }
    rows2.push_back(std::move(row));
  }
  std::vector<std::string> header{""};
  for (Int x1 = 0; x1 <= 6; ++x1) header.push_back("x1=" + std::to_string(x1));
  bench::print_table("Fig 3b: g = (1,2).x + B(x mod 3), B = -1 on the bumps",
                     header, rows2, 7);

  const crn::Crn crn2 = compile::compile_quilt_affine(g2);
  const auto sweep =
      verify::check_stable_computation_on_grid(crn2, g2.as_function(), 4);
  std::printf("\nLemma 6.1 CRN for fig3b: %zu species, %zu reactions; "
              "exhaustive check on [0,4]^2: %s\n",
              crn2.species_count(), crn2.reactions().size(),
              sweep.all_ok ? "all proved" : "FAILED");
}

void BM_CompileQuilt1D(benchmark::State& state) {
  const fn::QuiltAffine g = fn::examples::fig3a_quilt();
  for (auto _ : state) {
    const crn::Crn crn = compile::compile_quilt_affine(g);
    benchmark::DoNotOptimize(crn.species_count());
  }
}
BENCHMARK(BM_CompileQuilt1D);

void BM_CompileQuilt2D(benchmark::State& state) {
  const fn::QuiltAffine g = fn::examples::fig3b_quilt();
  for (auto _ : state) {
    const crn::Crn crn = compile::compile_quilt_affine(g);
    benchmark::DoNotOptimize(crn.species_count());
  }
}
BENCHMARK(BM_CompileQuilt2D);

void BM_EvaluateQuilt2D(benchmark::State& state) {
  const fn::QuiltAffine g = fn::examples::fig3b_quilt();
  Int x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(g(fn::Point{x % 100, (x * 7) % 100}));
    ++x;
  }
}
BENCHMARK(BM_EvaluateQuilt2D);

}  // namespace

CRNKIT_BENCH_MAIN(print_artifacts)
