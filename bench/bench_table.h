// Shared helpers for the figure/table regeneration benches.
//
// Every bench binary (a) prints the paper artifact it regenerates — the
// data series behind a figure, or a table — and (b) registers
// google-benchmark timings for the machinery involved. The EXPERIMENTS.md
// index maps each binary to its paper artifact.
#ifndef CRNKIT_BENCH_BENCH_TABLE_H_
#define CRNKIT_BENCH_BENCH_TABLE_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <type_traits>
#include <string>
#include <vector>

namespace crnkit::bench {

/// Prints a fixed-width table: header row then data rows.
inline void print_table(const std::string& title,
                        const std::vector<std::string>& header,
                        const std::vector<std::vector<std::string>>& rows,
                        int col_width = 14) {
  std::printf("\n=== %s ===\n", title.c_str());
  for (const auto& h : header) std::printf("%*s", col_width, h.c_str());
  std::printf("\n");
  for (const auto& row : rows) {
    for (const auto& cell : row) std::printf("%*s", col_width, cell.c_str());
    std::printf("\n");
  }
  std::fflush(stdout);
}

template <typename T>
  requires std::is_integral_v<T>
std::string fmt(T v) {
  return std::to_string(v);
}
inline std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace crnkit::bench

/// Common main: print the artifact (defined per binary), then run the
/// registered google-benchmark timings.
#define CRNKIT_BENCH_MAIN(print_artifacts)                 \
  int main(int argc, char** argv) {                        \
    print_artifacts();                                     \
    benchmark::Initialize(&argc, argv);                    \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    benchmark::RunSpecifiedBenchmarks();                   \
    benchmark::Shutdown();                                 \
    return 0;                                              \
  }

#endif  // CRNKIT_BENCH_BENCH_TABLE_H_
