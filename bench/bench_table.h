// Shared helpers for the figure/table regeneration benches.
//
// Every bench binary (a) prints the paper artifact it regenerates — the
// data series behind a figure, or a table — and (b) registers
// google-benchmark timings for the machinery involved. The EXPERIMENTS.md
// index maps each binary to its paper artifact.
//
// Binaries that track a performance trajectory across PRs additionally
// emit a machine-readable BENCH_<name>.json via JsonWriter /
// write_bench_json: a flat list of records with a name, events/sec (or
// another throughput measure), and wall time, so CI and future sessions
// can diff perf without parsing the human tables.
#ifndef CRNKIT_BENCH_BENCH_TABLE_H_
#define CRNKIT_BENCH_BENCH_TABLE_H_

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

namespace crnkit::bench {

/// Prints a fixed-width table: header row then data rows.
inline void print_table(const std::string& title,
                        const std::vector<std::string>& header,
                        const std::vector<std::vector<std::string>>& rows,
                        int col_width = 14) {
  std::printf("\n=== %s ===\n", title.c_str());
  for (const auto& h : header) std::printf("%*s", col_width, h.c_str());
  std::printf("\n");
  for (const auto& row : rows) {
    for (const auto& cell : row) std::printf("%*s", col_width, cell.c_str());
    std::printf("\n");
  }
  std::fflush(stdout);
}

template <typename T, typename = std::enable_if_t<std::is_integral_v<T>>>
std::string fmt(T v) {
  return std::to_string(v);
}
inline std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

/// One machine-readable benchmark record. `events_per_sec` is the
/// throughput measure (events, interactions, or items per second depending
/// on the bench); `wall_seconds` the wall time of the measured run.
struct BenchRecord {
  std::string name;
  double events_per_sec = 0.0;
  double wall_seconds = 0.0;
  std::uint64_t events = 0;
};

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

/// Writes BENCH_<bench_name>.json in the current working directory:
///   {"bench": "...", "records": [{"name": ..., "events_per_sec": ...,
///    "wall_seconds": ..., "events": ...}, ...]}
/// Extra top-level string/number fields can be appended via `extra`
/// (already-serialized `"key": value` fragments).
inline void write_bench_json(const std::string& bench_name,
                             const std::vector<BenchRecord>& records,
                             const std::vector<std::string>& extra = {}) {
  std::ostringstream os;
  os << "{\n  \"bench\": \"" << json_escape(bench_name) << "\",\n";
  for (const auto& fragment : extra) os << "  " << fragment << ",\n";
  os << "  \"records\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    char nums[96];
    std::snprintf(nums, sizeof(nums),
                  "\"events_per_sec\": %.1f, \"wall_seconds\": %.6f, "
                  "\"events\": %llu",
                  r.events_per_sec, r.wall_seconds,
                  static_cast<unsigned long long>(r.events));
    os << "    {\"name\": \"" << json_escape(r.name) << "\", " << nums
       << '}' << (i + 1 < records.size() ? "," : "") << '\n';
  }
  os << "  ]\n}\n";
  const std::string path = "BENCH_" + bench_name + ".json";
  std::ofstream file(path);
  file << os.str();
  std::printf("wrote %s\n", path.c_str());
  std::fflush(stdout);
}

}  // namespace crnkit::bench

/// Common main: print the artifact (defined per binary), then run the
/// registered google-benchmark timings.
#define CRNKIT_BENCH_MAIN(print_artifacts)                 \
  int main(int argc, char** argv) {                        \
    print_artifacts();                                     \
    benchmark::Initialize(&argc, argv);                    \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    benchmark::RunSpecifiedBenchmarks();                   \
    benchmark::Shutdown();                                 \
    return 0;                                              \
  }

#endif  // CRNKIT_BENCH_BENCH_TABLE_H_
