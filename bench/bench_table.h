// Shared helpers for the figure/table regeneration benches.
//
// Every bench binary (a) prints the paper artifact it regenerates — the
// data series behind a figure, or a table — and (b) registers
// google-benchmark timings for the machinery involved. The EXPERIMENTS.md
// index maps each binary to its paper artifact.
//
// Binaries that track a performance trajectory across PRs additionally
// emit a machine-readable BENCH_<name>.json via JsonWriter /
// write_bench_json: a flat list of records with a name, events/sec (or
// another throughput measure), and wall time, so CI and future sessions
// can diff perf without parsing the human tables.
#ifndef CRNKIT_BENCH_BENCH_TABLE_H_
#define CRNKIT_BENCH_BENCH_TABLE_H_

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <type_traits>
#include <vector>

#include "util/json_writer.h"

namespace crnkit::bench {

/// Prints a fixed-width table: header row then data rows.
inline void print_table(const std::string& title,
                        const std::vector<std::string>& header,
                        const std::vector<std::vector<std::string>>& rows,
                        int col_width = 14) {
  std::printf("\n=== %s ===\n", title.c_str());
  for (const auto& h : header) std::printf("%*s", col_width, h.c_str());
  std::printf("\n");
  for (const auto& row : rows) {
    for (const auto& cell : row) std::printf("%*s", col_width, cell.c_str());
    std::printf("\n");
  }
  std::fflush(stdout);
}

template <typename T, typename = std::enable_if_t<std::is_integral_v<T>>>
std::string fmt(T v) {
  return std::to_string(v);
}
inline std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

/// One machine-readable benchmark record. `events_per_sec` is the
/// throughput measure (events, interactions, or items per second depending
/// on the bench); `wall_seconds` the wall time of the measured run.
struct BenchRecord {
  std::string name;
  double events_per_sec = 0.0;
  double wall_seconds = 0.0;
  std::uint64_t events = 0;
};

using util::json_escape;

/// Writes BENCH_<bench_name>.json in the current working directory:
///   {"bench": "...", "records": [{"name": ..., "events_per_sec": ...,
///    "wall_seconds": ..., "events": ...}, ...]}
/// Extra top-level string/number fields can be appended via `extra`
/// (already-serialized `"key": value` fragments). Serialization is the
/// shared util::JsonWriter, so escaping matches the crnc CLI's output.
inline void write_bench_json(const std::string& bench_name,
                             const std::vector<BenchRecord>& records,
                             const std::vector<std::string>& extra = {}) {
  util::JsonWriter w;
  w.begin_object().kv("bench", bench_name);
  for (const auto& fragment : extra) w.raw_member(fragment);
  w.key("records").begin_array();
  for (const BenchRecord& r : records) {
    w.begin_object()
        .kv("name", r.name)
        .kv_fixed("events_per_sec", r.events_per_sec, 1)
        .kv_fixed("wall_seconds", r.wall_seconds, 6)
        .kv("events", r.events)
        .end_object();
  }
  w.end_array().end_object();
  const std::string path = "BENCH_" + bench_name + ".json";
  std::ofstream file(path);
  file << w.str() << "\n";
  std::printf("wrote %s\n", path.c_str());
  std::fflush(stdout);
}

}  // namespace crnkit::bench

/// Common main: print the artifact (defined per binary), then run the
/// registered google-benchmark timings.
#define CRNKIT_BENCH_MAIN(print_artifacts)                 \
  int main(int argc, char** argv) {                        \
    print_artifacts();                                     \
    benchmark::Initialize(&argc, argv);                    \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    benchmark::RunSpecifiedBenchmarks();                   \
    benchmark::Shutdown();                                 \
    return 0;                                              \
  }

#endif  // CRNKIT_BENCH_BENCH_TABLE_H_
