// E12 / Observation 2.2 + Lemma 2.3 table: composition by concatenation.
// Correct when the upstream is output-oblivious (2*min sweeps), incorrect
// otherwise — for 2*max the table reports the worst reachable output
// against the correct value, regenerating the Section 1.2 failure
// ("up to 2(x1 + x2) copies of Y").
#include "bench_table.h"
#include "compile/primitives.h"
#include "crn/checks.h"
#include "crn/compose.h"
#include "verify/reachability.h"
#include "verify/stable.h"

namespace {

using namespace crnkit;
using math::Int;

void print_artifacts() {
  const crn::Crn good =
      crn::concatenate(compile::min_crn(2), compile::scale_crn(2), "2min");
  const crn::Crn bad =
      crn::concatenate(compile::fig1_max_crn(), compile::scale_crn(2),
                       "2max");

  std::vector<std::vector<std::string>> rows;
  for (const auto& x : std::vector<fn::Point>{{1, 1}, {2, 3}, {3, 2},
                                              {4, 4}, {2, 5}}) {
    const Int want_min = 2 * std::min(x[0], x[1]);
    const Int want_max = 2 * std::max(x[0], x[1]);
    const bool min_ok =
        verify::check_stable_computation(good, x, want_min).ok;
    // Worst reachable output of the broken composition.
    const auto graph = verify::explore(bad, bad.initial_configuration(x));
    Int worst = 0;
    const auto y = static_cast<std::size_t>(bad.output_or_throw());
    for (std::size_t i = 0; i < graph.size(); ++i) {
      worst = std::max(worst,
                       static_cast<Int>(graph.view(static_cast<int>(i))[y]));
    }
    const bool max_ok =
        verify::check_stable_computation(bad, x, want_max).ok;
    rows.push_back({"(" + std::to_string(x[0]) + "," +
                        std::to_string(x[1]) + ")",
                    bench::fmt(want_min), min_ok ? "proved" : "FAIL",
                    bench::fmt(want_max), max_ok ? "ok?!" : "broken",
                    bench::fmt(worst),
                    bench::fmt(2 * (x[0] + x[1]))});
  }
  bench::print_table(
      "Composition by concatenation: 2*min (upstream OO) vs 2*max "
      "(upstream not OO)",
      {"x", "2min", "check", "2max", "verdict", "worst Y", "2(x1+x2)"},
      rows, 11);
  std::printf("\nupstream min output-oblivious: %s; upstream max: %s — "
              "Observation 2.2 in action\n",
              crn::is_output_oblivious(compile::min_crn(2)) ? "yes" : "no",
              crn::is_output_oblivious(compile::fig1_max_crn()) ? "yes"
                                                                : "no");

  // Deep chains of oblivious modules stay correct: k-fold doubling.
  std::vector<std::vector<std::string>> chain_rows;
  crn::Crn chain = compile::scale_crn(2);
  Int expected = 2;
  for (int depth = 1; depth <= 4; ++depth) {
    const bool ok = verify::check_stable_computation(chain, {3},
                                                     3 * expected)
                        .ok;
    chain_rows.push_back(
        {bench::fmt(static_cast<long long>(depth)),
         bench::fmt(static_cast<long long>(chain.species_count())),
         bench::fmt(static_cast<long long>(chain.reactions().size())),
         bench::fmt(3 * expected), ok ? "proved" : "FAIL"});
    chain = crn::concatenate(chain, compile::scale_crn(2),
                             "2^" + std::to_string(depth + 1));
    expected *= 2;
  }
  bench::print_table("Chained concatenation: (2^k) * x on x = 3",
                     {"depth", "species", "reactions", "f(3)", "check"},
                     chain_rows, 12);
}

void BM_Concatenate(benchmark::State& state) {
  const crn::Crn a = compile::min_crn(2);
  const crn::Crn b = compile::scale_crn(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crn::concatenate(a, b).species_count());
  }
}
BENCHMARK(BM_Concatenate);

void BM_ExploreBrokenComposition(benchmark::State& state) {
  const crn::Crn bad =
      crn::concatenate(compile::fig1_max_crn(), compile::scale_crn(2),
                       "2max");
  const Int n = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        verify::explore(bad, bad.initial_configuration({n, n})).size());
  }
}
BENCHMARK(BM_ExploreBrokenComposition)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

CRNKIT_BENCH_MAIN(print_artifacts)
