// E10 / Theorem 8.2 table: infinity-scaling convergence — the error
// |f(floor(cz))/c - fhat(z)| as c doubles, for a library of obliviously-
// computable functions; plus the continuous-class property checks of [9]
// (superadditivity of the scaled functions) and the mass-action ODE
// convergence of the continuous min CRN.
#include <cmath>

#include "bench_table.h"
#include "compile/primitives.h"
#include "cont/continuous_class.h"
#include "cont/ode.h"
#include "cont/scaling.h"
#include "fn/examples.h"
#include "sim/ensemble.h"

namespace {

using namespace crnkit;
using math::Rational;

void print_artifacts() {
  // Convergence table for fig4a along z = (1,1).
  const cont::PiecewiseLinearMin fhat =
      cont::scaling_of(fn::examples::fig4a_eventual());
  const double target = fhat({Rational(1), Rational(1)}).to_double();
  std::vector<std::vector<std::string>> rows;
  double c = 8.0;
  for (int i = 0; i < 10; ++i) {
    const double estimate =
        cont::scaling_estimate(fn::examples::fig4a(), {1.0, 1.0}, c);
    rows.push_back({bench::fmt(c), bench::fmt(estimate),
                    bench::fmt(std::abs(estimate - target))});
    c *= 2.0;
  }
  bench::print_table(
      "Definition 8.1 convergence: f = fig4a, z = (1,1), fhat(z) = " +
          std::to_string(target),
      {"c", "f(cz)/c", "|error|"}, rows, 14);

  // Scaling gradients of the example functions.
  std::vector<std::vector<std::string>> grows;
  grows.push_back({"floor(3x/2)",
                   math::to_string(cont::scaling_of(
                       fn::examples::fig3a_quilt()))});
  grows.push_back({"fig3b",
                   math::to_string(cont::scaling_of(
                       fn::examples::fig3b_quilt()))});
  for (const auto& g : fn::examples::fig7_extensions()) {
    grows.push_back({"fig7 " + g.name(),
                     math::to_string(cont::scaling_of(g))});
  }
  bench::print_table("Quilt-affine scalings (gradients survive, offsets "
                     "wash out)",
                     {"g", "scaling"}, grows, 20);

  // Superadditivity of fhat on sampled rational points ([9]'s class).
  std::vector<math::RatVec> points;
  for (math::Int a = 0; a <= 4; ++a) {
    for (math::Int b = 0; b <= 4; ++b) {
      points.push_back({Rational(a, 2), Rational(b, 2)});
    }
  }
  std::printf("\nfhat superadditive on 25 sampled points: %s\n",
              fhat.check_superadditive_on(points) ? "yes" : "NO");

  // Continuous min CRN convergence (the [9] side of Theorem 8.2).
  const crn::Crn min2 = compile::min_crn(2);
  std::vector<std::vector<std::string>> crows;
  for (const double t_end : {5.0, 20.0, 80.0}) {
    cont::Concentrations c0(min2.species_count(), 0.0);
    c0[static_cast<std::size_t>(min2.inputs()[0])] = 2.0;
    c0[static_cast<std::size_t>(min2.inputs()[1])] = 3.0;
    cont::OdeOptions options;
    options.t_end = t_end;
    const auto cs = cont::integrate_mass_action(min2, c0, options);
    const double y = cs[static_cast<std::size_t>(min2.output_or_throw())];
    crows.push_back({bench::fmt(t_end), bench::fmt(y),
                     bench::fmt(std::abs(y - 2.0))});
  }
  bench::print_table(
      "Continuous CRN X1+X2->Y from (2,3): y(t) -> min = 2",
      {"t", "y(t)", "|error|"}, crows, 14);

  // Stochastic counterpart via the batched SSA ensemble: the discrete min
  // CRN from (2c, 3c) has Y/c -> 2 exactly as c -> infinity (Theorem 8.2's
  // discrete side), and the kinetic path gets there with the compiled
  // engine. Aggregate throughput goes to BENCH_scaling.json.
  const sim::EnsembleRunner min_runner(min2);
  std::vector<std::vector<std::string>> srows;
  std::vector<bench::BenchRecord> records;
  for (const math::Int c : {8, 64, 512, 4096}) {
    sim::EnsembleOptions options;
    options.trajectories = 16;
    options.seed = 77;
    options.method = sim::EnsembleMethod::kDirect;
    const auto batch = min_runner.run_for_input({2 * c, 3 * c}, options);
    const double estimate =
        batch.output_stats.mean() / static_cast<double>(c);
    srows.push_back({bench::fmt(c), bench::fmt(estimate),
                     bench::fmt(std::abs(estimate - 2.0)),
                     bench::fmt(batch.events_per_second())});
    records.push_back({"ssa-min/c=" + std::to_string(c),
                       batch.events_per_second(), batch.wall_seconds,
                       batch.total_events});
  }
  bench::print_table(
      "Stochastic min CRN from (2c, 3c), 16-trajectory ensembles: "
      "Y/c -> 2",
      {"c", "Y/c", "|error|", "ev/s"}, srows, 14);
  bench::write_bench_json("scaling", records);
}

void BM_ScalingEstimate(benchmark::State& state) {
  const auto f = fn::examples::fig4a();
  const double c = static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cont::scaling_estimate(f, {1.0, 1.0}, c));
  }
}
BENCHMARK(BM_ScalingEstimate)->Arg(64)->Arg(4096);

void BM_OdeIntegration(benchmark::State& state) {
  const crn::Crn min2 = compile::min_crn(2);
  cont::Concentrations c0(min2.species_count(), 0.0);
  c0[static_cast<std::size_t>(min2.inputs()[0])] = 2.0;
  c0[static_cast<std::size_t>(min2.inputs()[1])] = 3.0;
  cont::OdeOptions options;
  options.t_end = static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cont::integrate_mass_action(min2, c0, options).size());
  }
}
BENCHMARK(BM_OdeIntegration)->Arg(10)->Arg(50)->Unit(benchmark::kMillisecond);

}  // namespace

CRNKIT_BENCH_MAIN(print_artifacts)
