// E2 / Figure 2: min(1, x) two ways — the leaderless non-output-oblivious
// CRN (X -> Y; 2Y -> Y) versus the leader-based output-oblivious one
// (L + X -> Y) — plus the Observation 9.1 superadditivity obstruction that
// explains why no leaderless output-oblivious CRN exists for it.
#include "bench_table.h"
#include "compile/primitives.h"
#include "crn/checks.h"
#include "fn/examples.h"
#include "fn/properties.h"
#include "verify/stable.h"

namespace {

using namespace crnkit;
using math::Int;

void print_artifacts() {
  const crn::Crn leaderless = compile::fig2_min1_leaderless();
  const crn::Crn with_leader = compile::fig2_min1_leader();
  const auto f = fn::examples::min_const1();

  std::vector<std::vector<std::string>> rows;
  for (Int x = 0; x <= 8; ++x) {
    rows.push_back(
        {bench::fmt(x), bench::fmt(f(x)),
         verify::check_stable_computation(leaderless, {x}, f(x)).ok
             ? "proved"
             : "FAIL",
         verify::check_stable_computation(with_leader, {x}, f(x)).ok
             ? "proved"
             : "FAIL"});
  }
  bench::print_table("Fig 2: min(1,x) stably computed both ways",
                     {"x", "min(1,x)", "leaderless", "leader"}, rows, 12);

  std::printf("\nleaderless CRN output-oblivious: %s (consumes Y in 2Y->Y)\n",
              crn::is_output_oblivious(leaderless) ? "yes" : "no");
  std::printf("leader CRN output-oblivious:     %s\n",
              crn::is_output_oblivious(with_leader) ? "yes" : "no");

  const auto violation = fn::find_superadditive_violation(f, 4);
  if (violation) {
    std::printf(
        "Observation 9.1 obstruction: %s -> no leaderless output-oblivious "
        "CRN can compute min(1,x)\n",
        violation->to_string().c_str());
  }
}

void BM_ExhaustiveCheckLeader(benchmark::State& state) {
  const crn::Crn crn = compile::fig2_min1_leader();
  for (auto _ : state) {
    const auto result =
        verify::check_stable_computation(crn, {state.range(0)}, 1);
    benchmark::DoNotOptimize(result.ok);
  }
}
BENCHMARK(BM_ExhaustiveCheckLeader)->Arg(20)->Arg(100);

void BM_ExhaustiveCheckLeaderless(benchmark::State& state) {
  const crn::Crn crn = compile::fig2_min1_leaderless();
  for (auto _ : state) {
    const auto result =
        verify::check_stable_computation(crn, {state.range(0)}, 1);
    benchmark::DoNotOptimize(result.ok);
  }
}
BENCHMARK(BM_ExhaustiveCheckLeaderless)->Arg(20)->Arg(100);

}  // namespace

CRNKIT_BENCH_MAIN(print_artifacts)
