// Tests for the compiled simulation representation: CompiledNetwork
// propensities/applicability/deltas against the dense crn::Reaction ground
// truth, and dependency-graph updates against full recomputation along
// random trajectories.
#include <gtest/gtest.h>

#include "compile/primitives.h"
#include "compile/theorem52.h"
#include "crn/bimolecular.h"
#include "crn/compose.h"
#include "fn/examples.h"
#include "sim/compiled_network.h"
#include "sim/gillespie.h"
#include "sim/scheduler.h"

namespace crnkit::sim {
namespace {

using crn::Config;
using crn::Crn;
using math::Int;

std::vector<Crn> example_crns() {
  std::vector<Crn> out;
  out.push_back(compile::min_crn(2));
  out.push_back(compile::fig1_max_crn());
  out.push_back(compile::scale_crn(3));
  out.push_back(compile::clamp_crn(2));
  out.push_back(compile::constant_crn(4));
  out.push_back(crn::concatenate(compile::min_crn(2), compile::scale_crn(2),
                                 "2min"));
  compile::ObliviousSpec spec{fn::examples::fig7(), 1,
                              fn::examples::fig7_extensions(), {}};
  out.push_back(compile::compile_theorem52(spec));
  return out;
}

TEST(CompiledNetwork, PropensitiesMatchDenseOnFig1Examples) {
  for (const Crn& crn : example_crns()) {
    const CompiledNetwork net(crn);
    ASSERT_EQ(net.reaction_count(), crn.reactions().size());
    ASSERT_EQ(net.species_count(), crn.species_count());
    Rng rng(99);
    // Random configurations, including sparse ones with many zeros.
    for (int trial = 0; trial < 50; ++trial) {
      Config config(crn.species_count());
      for (auto& c : config) {
        const std::size_t r = rng.uniform_index(10);
        c = r < 4 ? 0 : static_cast<Int>(r * r);
      }
      for (std::size_t j = 0; j < net.reaction_count(); ++j) {
        EXPECT_DOUBLE_EQ(net.propensity(j, config),
                         propensity(crn.reactions()[j], config))
            << crn.name() << " reaction " << j;
        EXPECT_EQ(net.applicable(j, config),
                  crn.reactions()[j].applicable(config));
      }
    }
  }
}

TEST(CompiledNetwork, ApplyMatchesDenseApply) {
  for (const Crn& crn : example_crns()) {
    const CompiledNetwork net(crn);
    Config config(crn.species_count(), 5);
    for (std::size_t j = 0; j < net.reaction_count(); ++j) {
      Config dense = config;
      Config compiled = config;
      crn.reactions()[j].apply_in_place(dense);
      net.apply(j, compiled);
      EXPECT_EQ(dense, compiled) << crn.name() << " reaction " << j;
    }
  }
}

TEST(CompiledNetwork, DependencyUpdatesMatchFullRecompute) {
  // Along random silent-run trajectories, recomputing only dependents(j)
  // after firing j must give the same propensity vector as recomputing
  // everything from scratch.
  for (const Crn& crn : example_crns()) {
    const CompiledNetwork net(crn);
    const std::size_t n = net.reaction_count();
    if (n == 0) continue;
    Rng rng(1234);

    Config config(crn.species_count());
    for (std::size_t s = 0; s < config.size(); ++s) {
      config[s] = static_cast<Int>(rng.uniform_index(6));
    }
    std::vector<double> incremental(n);
    for (std::size_t j = 0; j < n; ++j) {
      incremental[j] = net.propensity(j, config);
    }
    for (int step = 0; step < 200; ++step) {
      std::vector<std::size_t> applicable;
      for (std::size_t j = 0; j < n; ++j) {
        if (net.applicable(j, config)) applicable.push_back(j);
      }
      if (applicable.empty()) break;
      const std::size_t fired =
          applicable[rng.uniform_index(applicable.size())];
      net.apply(fired, config);
      for (const std::uint32_t k : net.dependents(fired)) {
        incremental[k] = net.propensity(k, config);
      }
      for (std::size_t j = 0; j < n; ++j) {
        ASSERT_DOUBLE_EQ(incremental[j], net.propensity(j, config))
            << crn.name() << " step " << step << " after firing " << fired
            << ": reaction " << j << " missing from dependency graph";
      }
    }
  }
}

TEST(CompiledNetwork, DeltasDropCatalysts) {
  Crn crn("catalyst");
  crn.set_input_species({"X"});
  crn.set_output_species("Y");
  crn.set_leader_species("L");
  crn.add_reaction_str("L + X -> L + Y");
  const CompiledNetwork net(crn);
  // Net deltas: X -1, Y +1; L dropped.
  const auto deltas = net.delta_species(0);
  ASSERT_EQ(deltas.size(), 2u);
  const auto l = static_cast<std::uint32_t>(crn.species("L"));
  for (const std::uint32_t s : deltas) {
    EXPECT_NE(s, l);
  }
  // Self-dependency through X (consumed), despite the catalytic L.
  const auto deps = net.dependents(0);
  ASSERT_EQ(deps.size(), 1u);
  EXPECT_EQ(deps[0], 0u);
}

TEST(CompiledNetwork, CompiledSimulatorsAgreeWithDenseOnOutputs) {
  // The compiled direct method and the dense reference compute the same
  // stable outputs (process law equality is checked statistically by the
  // sim tests; outputs of convergent CRNs are deterministic).
  const Crn crn = crn::concatenate(compile::min_crn(2),
                                   compile::scale_crn(2), "2min");
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng_compiled(seed);
    Rng rng_dense(seed);
    const auto compiled = simulate_direct(
        crn, crn.initial_configuration({7, 4}), rng_compiled);
    const auto dense = simulate_direct_dense(
        crn, crn.initial_configuration({7, 4}), rng_dense);
    EXPECT_TRUE(compiled.exhausted);
    EXPECT_TRUE(dense.exhausted);
    EXPECT_EQ(crn.output_count(compiled.final_config), 8);
    EXPECT_EQ(crn.output_count(dense.final_config), 8);
    EXPECT_EQ(compiled.events, dense.events);  // min then 2x: forced counts
  }
}

}  // namespace
}  // namespace crnkit::sim
