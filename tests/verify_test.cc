// Tests for the verification layer: exact reachability, the stable-
// computation decision procedure on the Figure 1 / Figure 2 examples, the
// Lemma 4.1 witness machinery (max and Equation (2)), and agreement between
// the exhaustive and randomized checkers.
#include <gtest/gtest.h>

#include <set>

#include "compile/primitives.h"
#include "fn/examples.h"
#include "verify/reachability.h"
#include "verify/simcheck.h"
#include "verify/stable.h"
#include "verify/witness.h"

namespace crnkit::verify {
namespace {

using crn::Crn;
using math::Int;

TEST(Reachability, EnumeratesMinConfigurations) {
  const Crn crn = compile::min_crn(2);
  const auto graph = explore(crn, crn.initial_configuration({2, 3}));
  // Configurations: y fired 0,1,2 times -> 3 configs.
  EXPECT_TRUE(graph.complete);
  EXPECT_EQ(graph.size(), 3u);
}

TEST(Reachability, PathReconstruction) {
  const Crn crn = compile::scale_crn(2);
  const auto graph = explore(crn, crn.initial_configuration({3}));
  ASSERT_TRUE(graph.complete);
  // The deepest configuration is reached by 3 firings of reaction 0.
  const auto over = find_output_exceeding(crn, graph, 5);
  ASSERT_TRUE(over.has_value());
  const auto path = path_from_root(graph, *over);
  EXPECT_EQ(path.size(), 3u);
  for (const int r : path) EXPECT_EQ(r, 0);
}

TEST(Reachability, BudgetTruncationIsFlagged) {
  const Crn crn = compile::scale_crn(1);
  const auto graph =
      explore(crn, crn.initial_configuration({100}), ExploreOptions{10});
  EXPECT_FALSE(graph.complete);
  EXPECT_LE(graph.size(), 10u);
}

TEST(Reachability, DuplicateSuccessorEdgesAreDeduped) {
  // Two distinct reactions with the same net effect reach the same
  // successor; the CSR adjacency must record the edge once.
  Crn crn("dup");
  crn.add_reaction_str("X -> Y");
  crn.add_reaction_str("X + Z -> Y + Z");
  crn.set_input_species({"X", "Z"});
  crn.set_output_species("Y");
  const auto graph = explore(crn, crn.initial_configuration({2, 1}));
  ASSERT_TRUE(graph.complete);
  for (std::size_t node = 0; node < graph.size(); ++node) {
    const auto succ = graph.successors(static_cast<int>(node));
    std::set<std::int32_t> unique(succ.begin(), succ.end());
    EXPECT_EQ(unique.size(), succ.size()) << "duplicate edge at " << node;
  }
  // From the root (X=2, Z=1) both reactions produce (X=1, Y=1, Z=1), so
  // the root's successor list is a single edge.
  EXPECT_EQ(graph.successors(0).size(), 1u);
}

TEST(Reachability, TruncationKeepsParentsUsable) {
  // Budget hit mid-frontier: every retained node still has a valid BFS
  // parent chain, and replaying path_from_root reproduces its config.
  const Crn crn = compile::scale_crn(2);
  const auto graph =
      explore(crn, crn.initial_configuration({40}), ExploreOptions{17});
  EXPECT_FALSE(graph.complete);
  ASSERT_EQ(graph.size(), 17u);
  for (std::size_t node = 0; node < graph.size(); ++node) {
    const auto path = path_from_root(graph, static_cast<int>(node));
    crn::Config c = crn.initial_configuration({40});
    for (const int r : path) {
      ASSERT_TRUE(crn.reactions()[static_cast<std::size_t>(r)].applicable(c));
      crn.reactions()[static_cast<std::size_t>(r)].apply_in_place(c);
    }
    EXPECT_EQ(c, graph.config(static_cast<int>(node)));
  }
}

TEST(Reachability, RootOnlyBudgetStillInternsRoot) {
  const Crn crn = compile::scale_crn(1);
  const auto graph =
      explore(crn, crn.initial_configuration({3}), ExploreOptions{1});
  EXPECT_EQ(graph.size(), 1u);
  EXPECT_FALSE(graph.complete);
  EXPECT_EQ(graph.config(0), crn.initial_configuration({3}));
}

TEST(StableComputation, Fig1ExamplesAreCorrect) {
  // 2x.
  const Crn twice = compile::scale_crn(2);
  EXPECT_TRUE(check_stable_computation(twice, {7}, 14).ok);
  EXPECT_FALSE(check_stable_computation(twice, {7}, 13).ok);
  // min.
  const Crn min2 = compile::min_crn(2);
  EXPECT_TRUE(check_stable_computation(min2, {4, 6}, 4).ok);
  // max: stably computes max even though it is not output-oblivious.
  const Crn max2 = compile::fig1_max_crn();
  EXPECT_TRUE(check_stable_computation(max2, {4, 6}, 6).ok);
  EXPECT_TRUE(check_stable_computation(max2, {5, 5}, 5).ok);
}

TEST(StableComputation, MaxOvershootsButRecovers) {
  // On input (2,2) the max CRN can reach Y = 4 > 2 transiently; the
  // overproduction field reports it while the overall check still passes.
  const Crn max2 = compile::fig1_max_crn();
  const auto result = check_stable_computation(max2, {2, 2}, 2);
  EXPECT_TRUE(result.ok);
  ASSERT_TRUE(result.overproduction.has_value());
  EXPECT_GT(max2.output_count(*result.overproduction), 2);
}

TEST(StableComputation, Fig2BothComputeMin1) {
  const fn::DiscreteFunction f = fn::examples::min_const1();
  const Crn leaderless = compile::fig2_min1_leaderless();
  const Crn with_leader = compile::fig2_min1_leader();
  for (Int x = 0; x <= 6; ++x) {
    EXPECT_TRUE(check_stable_computation(leaderless, {x}, f(x)).ok)
        << "leaderless at " << x;
    EXPECT_TRUE(check_stable_computation(with_leader, {x}, f(x)).ok)
        << "leader at " << x;
  }
}

TEST(StableComputation, GridSweep) {
  const Crn min2 = compile::min_crn(2);
  const auto sweep =
      check_stable_computation_on_grid(min2, fn::examples::min2(), 5);
  EXPECT_TRUE(sweep.all_ok);
  EXPECT_EQ(sweep.points_checked, 36);
}

TEST(StableComputation, DetectsBrokenCrn) {
  // X -> Y; X -> 2Y cannot stably compute the identity: once some X took
  // the doubling path the output is stuck too high.
  Crn crn("broken");
  crn.set_input_species({"X"});
  crn.set_output_species("Y");
  crn.add_reaction_str("X -> Y");
  crn.add_reaction_str("X -> 2 Y");
  const auto result = check_stable_computation(crn, {3}, 3);
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(result.overproduction.has_value());
  EXPECT_TRUE(result.counterexample.has_value());
}

TEST(StableComputation, IncompleteExplorationNeverClaimsSuccess) {
  const Crn twice = compile::scale_crn(2);
  StableCheckOptions options;
  options.max_configs = 3;
  const auto result = check_stable_computation(twice, {50}, 100, options);
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.complete);
}

TEST(Lemma41, MaxFamilyFromThePaper) {
  // a_i = (i, 0), Delta_ij = (0, j): the Section 4 witness for max.
  EXPECT_TRUE(
      check_linear_family(fn::examples::max2(), {1, 0}, {0, 1}, 10));
}

TEST(Lemma41, Eq2FamilyFromThePaper) {
  EXPECT_TRUE(check_linear_family(fn::examples::eq2_counterexample(), {1, 0},
                                  {0, 1}, 10));
}

TEST(Lemma41, MinHasNoWitness) {
  EXPECT_FALSE(find_lemma41_witness(fn::examples::min2()).has_value());
}

TEST(Lemma41, Fig4aHasNoWitness) {
  EXPECT_FALSE(find_lemma41_witness(fn::examples::fig4a()).has_value());
}

TEST(Lemma41, SearchFindsMaxWitness) {
  const auto witness = find_lemma41_witness(fn::examples::max2());
  ASSERT_TRUE(witness.has_value());
  // Whatever directions were found must genuinely pass the check.
  EXPECT_TRUE(check_linear_family(fn::examples::max2(), witness->u,
                                  witness->v, 12));
}

TEST(Lemma41, SearchFindsEq2Witness) {
  EXPECT_TRUE(
      find_lemma41_witness(fn::examples::eq2_counterexample()).has_value());
}

TEST(DifferenceReversal, SingleReversalIsWeakerThanLemma41) {
  // Both max and min exhibit single difference reversals — e.g. for min,
  // a=(0,4), b=(4,4), d=(4,0) gives 4 > 0 — which is exactly why the
  // *pair* form is not an impossibility witness: min is obliviously-
  // computable, and only max extends its reversal to a full Lemma 4.1
  // linear family (checked in the Lemma41 tests above).
  EXPECT_TRUE(find_difference_reversal(fn::examples::max2(), 4).has_value());
  EXPECT_TRUE(find_difference_reversal(fn::examples::min2(), 4).has_value());
  // A genuinely difference-monotone function has none: x1 + x2.
  const fn::DiscreteFunction sum(
      2, [](const fn::Point& x) { return x[0] + x[1]; }, "sum");
  EXPECT_FALSE(find_difference_reversal(sum, 4).has_value());
}

TEST(SimCheck, AgreesWithExhaustiveChecker) {
  const Crn min2 = compile::min_crn(2);
  const auto result = sim_check_grid(min2, fn::examples::min2(), 4);
  EXPECT_TRUE(result.ok) << result.summary();
  EXPECT_EQ(result.mismatches, 0);
}

TEST(SimCheck, CatchesBrokenCrn) {
  Crn crn("broken");
  crn.set_input_species({"X"});
  crn.set_output_species("Y");
  crn.add_reaction_str("X -> 2 Y");
  const auto result = sim_check_point(crn, fn::examples::twice(), {3});
  EXPECT_TRUE(result.ok);  // X -> 2Y does compute 2x
  const auto bad =
      sim_check_point(crn, fn::examples::floor_3x_over_2(), {3});
  EXPECT_FALSE(bad.ok);
}

TEST(SimCheck, LargeInputsBeyondExhaustiveReach) {
  const Crn min2 = compile::min_crn(2);
  const auto result = sim_check_points(
      min2, fn::examples::min2(), {{500, 700}, {1000, 999}, {0, 1234}});
  EXPECT_TRUE(result.ok) << result.summary();
  EXPECT_EQ(result.verdict(), SimCheckResult::Verdict::kPass);
  EXPECT_EQ(result.non_silent_trials, 0);
}

TEST(SimCheck, ExhaustedStepBudgetIsInconclusiveNotEvidence) {
  // A step budget of 1 cannot reach silence from x = 50: every trial is
  // non-silent, carries no agreement evidence, and the verdict is an
  // explicit inconclusive — not a pass and not a disproof.
  const Crn min2 = compile::min_crn(2);
  SimCheckOptions options;
  options.max_steps = 1;
  const auto result =
      sim_check_point(min2, fn::examples::min2(), {50, 50}, options);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.verdict(), SimCheckResult::Verdict::kInconclusive);
  EXPECT_EQ(result.verdict_name(), "inconclusive");
  EXPECT_EQ(result.silent_trials, 0);
  EXPECT_EQ(result.non_silent_trials, result.trials);
  EXPECT_EQ(result.mismatches, 0);
  EXPECT_TRUE(result.failures.empty());
  EXPECT_EQ(result.inconclusive_points, 1);
  EXPECT_NE(result.summary().find("INCONCLUSIVE"), std::string::npos)
      << result.summary();
}

TEST(SimCheck, MixedConclusiveAndInconclusivePoints) {
  // (0,0) is silent immediately; (50,50) cannot finish in one step. The
  // merged result distinguishes the evidence from the timeout.
  const Crn min2 = compile::min_crn(2);
  SimCheckOptions options;
  options.max_steps = 1;
  const auto result = sim_check_points(min2, fn::examples::min2(),
                                       {{0, 0}, {50, 50}}, options);
  EXPECT_EQ(result.verdict(), SimCheckResult::Verdict::kInconclusive);
  EXPECT_GT(result.silent_trials, 0);
  EXPECT_GT(result.non_silent_trials, 0);
  EXPECT_EQ(result.inconclusive_points, 1);
  EXPECT_EQ(result.mismatches, 0);
}

TEST(SimCheck, MismatchOutranksInconclusive) {
  // X -> 2Y against f(x) = x: silent trials disprove, so the verdict is
  // fail even if other trials were to time out.
  Crn crn("broken");
  crn.set_input_species({"X"});
  crn.set_output_species("Y");
  crn.add_reaction_str("X -> 2 Y");
  const auto result = sim_check_point(
      crn, fn::DiscreteFunction(1, [](const fn::Point& x) { return x[0]; },
                                "x"),
      {3});
  EXPECT_EQ(result.verdict(), SimCheckResult::Verdict::kFail);
  EXPECT_GT(result.mismatches, 0);
  EXPECT_FALSE(result.failures.empty());
}

}  // namespace
}  // namespace crnkit::verify
