// Unit tests for the observability layer: obs::Registry instruments and
// both exposition formats, obs::Tracer span recording and Chrome trace
// export, and the cost contract — a Span constructed while the tracer is
// disabled performs no heap allocation (the verify explore hot path
// depends on this).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/json_value.h"
#include "util/json_writer.h"

// Counting global operator new: semantics unchanged (malloc-backed), but
// every allocation bumps g_allocations so tests can assert a scope is
// allocation-free. Replacing the global operators in one TU covers the
// whole test binary; each gtest case runs as its own ctest process, so
// nothing else races the counter during the hot-path assertion.
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace crnkit {
namespace {

TEST(Metrics, CounterAccumulatesAcrossThreads) {
  obs::Registry registry;
  obs::Counter& c = registry.counter("test_total", "help");
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 1000; ++i) c.inc();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), 8000u);
  // Same (name, labels) resolves to the same handle.
  EXPECT_EQ(&registry.counter("test_total", "help"), &c);
  EXPECT_EQ(registry.series_count(), 1u);
}

TEST(Metrics, LabelsMakeDistinctSeries) {
  obs::Registry registry;
  obs::Counter& a = registry.counter("req_total", "h", {{"op", "verify"}});
  obs::Counter& b = registry.counter("req_total", "h", {{"op", "compose"}});
  EXPECT_NE(&a, &b);
  a.inc(3);
  b.inc(5);
  EXPECT_EQ(a.value(), 3u);
  EXPECT_EQ(b.value(), 5u);
  EXPECT_EQ(registry.series_count(), 2u);
  // Label order does not change series identity.
  obs::Counter& c = registry.counter(
      "pair_total", "h", {{"a", "1"}, {"b", "2"}});
  obs::Counter& d = registry.counter(
      "pair_total", "h", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(&c, &d);
}

TEST(Metrics, CounterUpdateTotalIsHighWaterMark) {
  obs::Registry registry;
  obs::Counter& c = registry.counter("mirror_total", "h");
  c.update_total(10);
  EXPECT_EQ(c.value(), 10u);
  c.update_total(7);  // behind: no-op, counters stay monotone
  EXPECT_EQ(c.value(), 10u);
  c.update_total(25);
  EXPECT_EQ(c.value(), 25u);
}

TEST(Metrics, GaugeSetAddSub) {
  obs::Registry registry;
  obs::Gauge& g = registry.gauge("inflight", "h");
  g.set(5);
  g.add(3);
  g.sub(7);
  EXPECT_EQ(g.value(), 1);
}

TEST(Metrics, HistogramBucketsAndSnapshot) {
  obs::Registry registry;
  obs::Histogram& h =
      registry.histogram("latency_seconds", "h", {0.1, 1.0, 10.0});
  h.observe(0.05);   // bucket 0
  h.observe(0.5);    // bucket 1
  h.observe(0.5);    // bucket 1
  h.observe(100.0);  // overflow bucket
  const obs::Histogram::Snapshot snap = h.snapshot();
  ASSERT_EQ(snap.bounds.size(), 3u);
  ASSERT_EQ(snap.buckets.size(), 4u);
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.buckets[1], 2u);
  EXPECT_EQ(snap.buckets[2], 0u);
  EXPECT_EQ(snap.buckets[3], 1u);
  EXPECT_EQ(snap.count, 4u);
  EXPECT_DOUBLE_EQ(snap.sum, 101.05);
}

TEST(Metrics, KindMismatchThrows) {
  obs::Registry registry;
  registry.counter("thing_total", "h");
  EXPECT_THROW(registry.gauge("thing_total", "h"), std::logic_error);
  EXPECT_THROW(registry.histogram("thing_total", "h", {1.0}),
               std::logic_error);
}

TEST(Metrics, PrometheusRendering) {
  obs::Registry registry;
  registry.counter("jobs_total", "Jobs run.", {{"op", "verify"}}).inc(2);
  registry.gauge("workers", "Worker count.").set(4);
  obs::Histogram& h = registry.histogram("wait_seconds", "Wait.", {1.0});
  h.observe(0.5);
  h.observe(2.0);
  const std::string text = registry.render_prometheus();
  EXPECT_NE(text.find("# HELP jobs_total Jobs run."), std::string::npos);
  EXPECT_NE(text.find("# TYPE jobs_total counter"), std::string::npos);
  EXPECT_NE(text.find("jobs_total{op=\"verify\"} 2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE workers gauge"), std::string::npos);
  EXPECT_NE(text.find("workers 4"), std::string::npos);
  EXPECT_NE(text.find("# TYPE wait_seconds histogram"), std::string::npos);
  EXPECT_NE(text.find("wait_seconds_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("wait_seconds_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("wait_seconds_count 2"), std::string::npos);
}

TEST(Metrics, CollectorRunsOnScrape) {
  obs::Registry registry;
  obs::Counter& mirror = registry.counter("mirrored_total", "h");
  std::uint64_t external = 0;
  registry.register_collector(
      [&] { mirror.update_total(external); });
  external = 42;
  const std::string text = registry.render_prometheus();
  EXPECT_NE(text.find("mirrored_total 42"), std::string::npos);
}

TEST(Metrics, JsonExposition) {
  obs::Registry registry;
  registry.counter("a_total", "h").inc(7);
  registry.gauge("b", "h").set(-3);
  registry.histogram("c_seconds", "h", {1.0}).observe(0.5);
  util::JsonWriter w;
  registry.write_json(w);
  const util::JsonValue doc = util::JsonValue::parse(w.str());
  EXPECT_EQ(doc.get("counters").get("a_total").as_int(), 7);
  EXPECT_EQ(doc.get("gauges").get("b").as_int(), -3);
  EXPECT_TRUE(doc.get("histograms").has("c_seconds"));
}

TEST(Metrics, SeriesKeyRendering) {
  EXPECT_EQ(obs::series_key("x_total", {}), "x_total");
  EXPECT_EQ(obs::series_key("x_total", {{"op", "verify"}, {"proto", "http"}}),
            "x_total{op=\"verify\",proto=\"http\"}");
}

TEST(Metrics, GlobalRegistryExportsPoolSeries) {
  const std::string text = obs::Registry::instance().render_prometheus();
  EXPECT_NE(text.find("crnkit_pool_jobs_total"), std::string::npos);
  EXPECT_NE(text.find("crnkit_pool_workers"), std::string::npos);
}

TEST(Trace, DisabledTracerRecordsNothing) {
  obs::Tracer::stop();
  {
    obs::Span span("test.invisible");
    span.arg("n", 1);
  }
  obs::Tracer::start();
  obs::Tracer::stop();
  const std::string json = obs::Tracer::render_chrome_json();
  EXPECT_EQ(json.find("test.invisible"), std::string::npos);
}

TEST(Trace, SpansRecordWithArgs) {
  obs::Tracer::start();
  {
    obs::Span outer("test.outer");
    outer.arg("level", 3);
    obs::Span inner("test.inner");
    inner.arg("frontier", 17);
  }
  obs::Tracer::stop();
  const std::string json = obs::Tracer::render_chrome_json();
  const util::JsonValue doc = util::JsonValue::parse(json);
  const util::JsonValue& events = doc.get("traceEvents");
  ASSERT_TRUE(events.is_array());
  bool saw_outer = false, saw_inner = false;
  for (const util::JsonValue& e : events.items()) {
    const std::string& name = e.get("name").as_string();
    EXPECT_EQ(e.get("ph").as_string(), "X");
    EXPECT_TRUE(e.has("ts"));
    EXPECT_TRUE(e.has("dur"));
    EXPECT_TRUE(e.has("tid"));
    if (name == "test.outer") {
      saw_outer = true;
      EXPECT_EQ(e.get("args").get("level").as_int(), 3);
    } else if (name == "test.inner") {
      saw_inner = true;
      EXPECT_EQ(e.get("args").get("frontier").as_int(), 17);
    }
  }
  EXPECT_TRUE(saw_outer);
  EXPECT_TRUE(saw_inner);
}

TEST(Trace, NewGenerationDropsOldEvents) {
  obs::Tracer::start();
  { obs::Span span("test.first_gen"); }
  obs::Tracer::stop();
  obs::Tracer::start();
  { obs::Span span("test.second_gen"); }
  obs::Tracer::stop();
  const std::string json = obs::Tracer::render_chrome_json();
  EXPECT_EQ(json.find("test.first_gen"), std::string::npos);
  EXPECT_NE(json.find("test.second_gen"), std::string::npos);
}

TEST(Trace, SpansFromWorkerThreadsAreExported) {
  obs::Tracer::start();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] { obs::Span span("test.worker"); });
  }
  for (std::thread& t : threads) t.join();
  obs::Tracer::stop();
  const std::string json = obs::Tracer::render_chrome_json();
  std::size_t occurrences = 0;
  for (std::size_t at = json.find("test.worker"); at != std::string::npos;
       at = json.find("test.worker", at + 1)) {
    ++occurrences;
  }
  EXPECT_EQ(occurrences, 4u);
}

TEST(Trace, DisabledSpanDoesNotAllocate) {
  obs::Tracer::stop();
  ASSERT_FALSE(obs::Tracer::enabled());
  const std::uint64_t before =
      g_allocations.load(std::memory_order_relaxed);
  for (std::int64_t i = 0; i < 10000; ++i) {
    obs::Span span("test.hot_path");
    span.arg("i", i);
  }
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed), before);
}

}  // namespace
}  // namespace crnkit
