// Tests for the function layer: quilt-affine functions (Definition 5.1,
// Figure 3), semilinear normal form (Lemma 7.3), the 1D eventual structure
// (Figure 5), and grid-checked properties (Observations 2.1 / 9.1).
#include <gtest/gtest.h>

#include "fn/examples.h"
#include "fn/oned_structure.h"
#include "fn/properties.h"
#include "fn/quilt_affine.h"
#include "fn/semilinear.h"

namespace crnkit::fn {
namespace {

using math::Int;
using math::Rational;

TEST(QuiltAffine, Fig3aMatchesFlooredDivision) {
  const QuiltAffine g = examples::fig3a_quilt();
  const DiscreteFunction f = examples::floor_3x_over_2();
  for (Int x = 0; x <= 40; ++x) {
    EXPECT_EQ(g(Point{x}), f(x)) << "at x=" << x;
  }
}

TEST(QuiltAffine, Fig3aFiniteDifferences) {
  const QuiltAffine g = examples::fig3a_quilt();
  // delta_0 = f(1)-f(0) = 1, delta_1 = f(2)-f(1) = 2.
  EXPECT_EQ(g.finite_difference(0, math::CongruenceClass({0}, 2)), 1);
  EXPECT_EQ(g.finite_difference(0, math::CongruenceClass({1}, 2)), 2);
  EXPECT_TRUE(g.is_nondecreasing());
  EXPECT_TRUE(g.is_nonnegative_everywhere());
}

TEST(QuiltAffine, Fig3bIsNondecreasingWithBumps) {
  const QuiltAffine g = examples::fig3b_quilt();
  EXPECT_TRUE(g.is_nondecreasing());
  // The bump classes dip by 1 relative to the linear part.
  EXPECT_EQ(g(Point{1, 2}), 1 + 4 - 1);
  EXPECT_EQ(g(Point{0, 2}), 0 + 4);
  // Exhaustive nondecreasing check through the black-box interface.
  EXPECT_FALSE(
      find_nondecreasing_violation(g.as_function(), 9).has_value());
}

TEST(QuiltAffine, RejectsNonIntegerValued) {
  // gradient 1/2 with zero offsets is not integer-valued at x=1.
  EXPECT_THROW(QuiltAffine({Rational(1, 2)}, 1, {Rational(0)}),
               std::invalid_argument);
  // With period 2 and a compensating offset it is fine: ceil(x/2).
  const QuiltAffine g({Rational(1, 2)}, 2, {Rational(0), Rational(1, 2)});
  EXPECT_EQ(g(Point{3}), 2);
  EXPECT_EQ(g(Point{4}), 2);
}

TEST(QuiltAffine, RejectsWrongOffsetCount) {
  EXPECT_THROW(QuiltAffine({Rational(1)}, 2, {Rational(0)}),
               std::invalid_argument);
}

TEST(QuiltAffine, TranslationShiftsArgument) {
  const QuiltAffine g = examples::fig3a_quilt();
  const QuiltAffine shifted = g.translated(Point{3});
  for (Int x = 0; x <= 20; ++x) {
    EXPECT_EQ(shifted(Point{x}), g(Point{x + 3}));
  }
}

TEST(QuiltAffine, WithPeriodPreservesValues) {
  const QuiltAffine g = examples::fig3a_quilt();
  const QuiltAffine coarse = g.with_period(6);
  EXPECT_EQ(coarse.period(), 6);
  for (Int x = 0; x <= 24; ++x) {
    EXPECT_EQ(coarse(Point{x}), g(Point{x}));
  }
  EXPECT_THROW(g.with_period(3), std::invalid_argument);
}

TEST(QuiltAffine, NonnegativeEverywhereDetectsNegativeOffsets) {
  // g(x) = x - 2: negative near the origin.
  const QuiltAffine g = QuiltAffine::affine({Rational(1)}, Rational(-2));
  EXPECT_FALSE(g.is_nonnegative_everywhere());
  EXPECT_TRUE(g.translated(Point{2}).is_nonnegative_everywhere());
}

TEST(MinOfQuiltAffine, EvaluatesPointwiseMin) {
  const MinOfQuiltAffine m = examples::fig4a_eventual();
  // At (10, 10): g1 = 30, g2 = 30, g3 = 25.
  EXPECT_EQ(m(Point{10, 10}), 25);
  // At (10, 0): g2 = 10 wins.
  EXPECT_EQ(m(Point{10, 0}), 10);
}

TEST(SemilinearFunction, Fig7NormalForm) {
  // Build fig7 explicitly in Lemma 7.3 normal form and compare.
  SemilinearFunction sf(examples::fig7_arrangement(), 1, "fig7-explicit");
  // Signs: (x1 - x2 >= 1, x2 - x1 >= 1).
  sf.set_region_piece({+1, -1},
                      {{Rational(0), Rational(1)}, Rational(1)});  // x2 + 1
  sf.set_region_piece({-1, +1},
                      {{Rational(1), Rational(0)}, Rational(1)});  // x1 + 1
  sf.set_region_piece({-1, -1},
                      {{Rational(1), Rational(0)}, Rational(0)});  // x1
  const DiscreteFunction f = examples::fig7();
  EXPECT_FALSE(find_disagreement(sf.as_function(), f, 9).has_value());
}

TEST(SemilinearFunction, MissingPieceThrows) {
  SemilinearFunction sf(examples::fig7_arrangement(), 1);
  sf.set_region_piece({+1, -1}, {{Rational(0), Rational(1)}, Rational(1)});
  EXPECT_THROW((void)sf(Point{1, 5}), std::invalid_argument);
  EXPECT_TRUE(sf.has_piece_at(Point{5, 1}));
  EXPECT_FALSE(sf.has_piece_at(Point{1, 5}));
}

TEST(OneDStructure, DetectsFloor3xOver2) {
  const auto s = detect_oned_structure(examples::floor_3x_over_2());
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->p, 2);
  EXPECT_EQ(s->n, 0);
  EXPECT_EQ(s->deltas, (std::vector<Int>{1, 2}));
}

TEST(OneDStructure, DetectsEventuallyConstant) {
  const auto s = detect_oned_structure(examples::min_const1());
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->p, 1);
  EXPECT_EQ(s->n, 1);
  EXPECT_EQ(s->deltas, (std::vector<Int>{0}));
  EXPECT_EQ(s->initial, (std::vector<Int>{0, 1}));
}

TEST(OneDStructure, DetectsPiecewiseWiggle) {
  DiscreteFunction f(
      1,
      [](const Point& x) -> Int {
        if (x[0] < 3) return 0;
        return 2 * x[0] - 6 + (x[0] % 2);
      },
      "wiggle");
  const auto s = detect_oned_structure(f);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->p, 2);
  EXPECT_LE(s->n, 3);
}

TEST(OneDStructure, EvaluateReconstructsFunction) {
  for (const auto& f : examples::oned_suite()) {
    const auto s = detect_oned_structure(f);
    ASSERT_TRUE(s.has_value()) << f.name();
    for (Int x = 0; x <= 60; ++x) {
      EXPECT_EQ(s->evaluate(x), f(x)) << f.name() << " at x=" << x;
    }
  }
}

TEST(OneDStructure, EventualQuiltAffineAgreesBeyondThreshold) {
  for (const auto& f : examples::oned_suite()) {
    const auto s = detect_oned_structure(f);
    ASSERT_TRUE(s.has_value()) << f.name();
    const QuiltAffine g = s->eventual_quilt_affine();
    for (Int x = s->n; x <= s->n + 4 * s->p; ++x) {
      EXPECT_EQ(g(Point{x}), f(x)) << f.name() << " at x=" << x;
    }
  }
}

TEST(OneDStructure, NoStructureForNonSemilinear) {
  // x^2's differences are never eventually periodic.
  DiscreteFunction f(
      1, [](const Point& x) { return x[0] * x[0]; }, "square");
  EXPECT_FALSE(detect_oned_structure(f).has_value());
  EXPECT_THROW(require_oned_structure(f), std::invalid_argument);
}

TEST(Properties, NondecreasingViolation) {
  EXPECT_FALSE(
      find_nondecreasing_violation(examples::min2(), 6).has_value());
  DiscreteFunction dec(
      1, [](const Point& x) { return 10 - x[0]; }, "decreasing");
  const auto v = find_nondecreasing_violation(dec, 6);
  ASSERT_TRUE(v.has_value());
  EXPECT_GT(v->fa, v->fb);
}

TEST(Properties, Fig4aIsNondecreasing) {
  EXPECT_FALSE(
      find_nondecreasing_violation(examples::fig4a(), 12).has_value());
}

TEST(Properties, Fig4aMatchesEventualMinBeyondThreshold) {
  const DiscreteFunction f = examples::fig4a();
  const MinOfQuiltAffine m = examples::fig4a_eventual();
  const auto bad =
      find_domination_violation(m.as_function(), f, examples::fig4a_threshold(),
                                8);
  EXPECT_FALSE(bad.has_value());
  const auto bad2 =
      find_domination_violation(f, m.as_function(), examples::fig4a_threshold(),
                                8);
  EXPECT_FALSE(bad2.has_value());
}

TEST(Properties, SuperadditiveSuiteIsSuperadditive) {
  for (const auto& f : examples::oned_superadditive_suite()) {
    EXPECT_FALSE(find_superadditive_violation(f, 12).has_value()) << f.name();
  }
}

TEST(Properties, MinConst1IsNotSuperadditive) {
  // min(1, x): f(1) + f(1) = 2 > f(2) = 1 — the Obs 9.1 obstruction.
  const auto v = find_superadditive_violation(examples::min_const1(), 4);
  ASSERT_TRUE(v.has_value());
}

TEST(Properties, MaxIsNondecreasingButEq2IsToo) {
  EXPECT_FALSE(find_nondecreasing_violation(examples::max2(), 8).has_value());
  EXPECT_FALSE(
      find_nondecreasing_violation(examples::eq2_counterexample(), 8)
          .has_value());
}

TEST(DiscreteFunction, RestrictInputPins) {
  const DiscreteFunction f = examples::min2();
  const DiscreteFunction r = f.restrict_input(0, 3);
  EXPECT_EQ(r(Point{100, 7}), 3);  // min(3, 7), first input ignored
  EXPECT_EQ(r(Point{0, 1}), 1);
}

TEST(DiscreteFunction, ArityMismatchThrows) {
  const DiscreteFunction f = examples::min2();
  EXPECT_THROW((void)f(Point{1}), std::invalid_argument);
  EXPECT_THROW((void)f(Point{1, 2, 3}), std::invalid_argument);
}

}  // namespace
}  // namespace crnkit::fn
