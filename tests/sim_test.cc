// Tests for the stochastic layer: random silent runs, Gillespie direct and
// next-reaction methods (both exact SSA), and the population-protocol pair
// scheduler.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "compile/primitives.h"
#include "crn/bimolecular.h"
#include "sim/gillespie.h"
#include "sim/next_reaction.h"
#include "sim/population.h"
#include "sim/scheduler.h"

namespace crnkit::sim {
namespace {

using crn::Config;
using crn::Crn;
using math::Int;

TEST(Scheduler, RunsToSilenceOnMin) {
  const Crn crn = compile::min_crn(2);
  Rng rng(7);
  const auto run = run_until_silent(crn, crn.initial_configuration({5, 3}),
                                    rng);
  EXPECT_TRUE(run.silent);
  EXPECT_EQ(crn.output_count(run.final_config), 3);
  EXPECT_EQ(run.steps, 3u);  // exactly min(5,3) firings
}

TEST(Scheduler, DeterministicUnderSeed) {
  const Crn crn = compile::fig1_max_crn();
  Rng rng1(42);
  Rng rng2(42);
  const auto a = run_until_silent(crn, crn.initial_configuration({4, 6}),
                                  rng1);
  const auto b = run_until_silent(crn, crn.initial_configuration({4, 6}),
                                  rng2);
  EXPECT_EQ(a.final_config, b.final_config);
  EXPECT_EQ(a.steps, b.steps);
}

TEST(Scheduler, MaxCrnStillConvergesToMax) {
  // Fig 1's max CRN stably computes max even though it consumes output.
  const Crn crn = compile::fig1_max_crn();
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    const auto run = run_until_silent(crn, crn.initial_configuration({4, 6}),
                                      rng);
    ASSERT_TRUE(run.silent);
    EXPECT_EQ(crn.output_count(run.final_config), 6);
  }
}

TEST(Gillespie, PropensityIsCombinatorial) {
  const crn::Reaction r({{0, 2}}, {{1, 1}});  // 2A -> B
  EXPECT_DOUBLE_EQ(propensity(r, {4, 0}), 6.0);   // C(4,2)
  EXPECT_DOUBLE_EQ(propensity(r, {1, 0}), 0.0);
  const crn::Reaction r2({{0, 1}, {1, 1}}, {{2, 1}});  // A + B -> C
  EXPECT_DOUBLE_EQ(propensity(r2, {3, 5, 0}), 15.0);
}

TEST(Gillespie, DirectMethodComputesDouble) {
  const Crn crn = compile::scale_crn(2);
  Rng rng(5);
  const auto run = simulate_direct(crn, crn.initial_configuration({10}), rng);
  EXPECT_TRUE(run.exhausted);
  EXPECT_EQ(run.events, 10u);
  EXPECT_EQ(crn.output_count(run.final_config), 20);
  EXPECT_GT(run.time, 0.0);
}

TEST(Gillespie, ObserverSeesEveryEvent) {
  const Crn crn = compile::scale_crn(1);
  Rng rng(5);
  GillespieOptions options;
  int events = 0;
  double last_time = 0.0;
  options.observer = [&](double t, const Config&) {
    EXPECT_GE(t, last_time);
    last_time = t;
    ++events;
  };
  (void)simulate_direct(crn, crn.initial_configuration({7}), rng, options);
  EXPECT_EQ(events, 7);
}

TEST(Gillespie, RatesChangeSelectionWeights) {
  // Two competing conversions; with rate 1000:1 nearly all X goes to Y1.
  Crn crn("race");
  crn.set_input_species({"X"});
  crn.set_output_species("Y1");
  crn.add_reaction_str("X -> Y1");
  crn.add_reaction_str("X -> Y2");
  GillespieOptions options;
  options.rates = {1000.0, 1.0};
  Rng rng(11);
  const auto run =
      simulate_direct(crn, crn.initial_configuration({200}), rng, options);
  EXPECT_GT(crn.output_count(run.final_config), 180);
}

TEST(Gillespie, MismatchedRatesRejectedAtTheEntryBoundary) {
  // A mis-sized rates vector must be rejected up front — before any event
  // fires — by every simulator entry point, with both sizes spelled out.
  Crn crn("race");
  crn.set_input_species({"X"});
  crn.set_output_species("Y1");
  crn.add_reaction_str("X -> Y1");
  crn.add_reaction_str("X -> Y2");  // 2 reactions
  const CompiledNetwork net(crn);
  const Config initial = crn.initial_configuration({5});
  GillespieOptions options;
  options.rates = {1.0, 2.0, 3.0, 4.0};  // 4 entries

  const auto expect_mismatch = [](const char* entry, auto&& call) {
    try {
      call();
      FAIL() << entry << ": expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find(entry), std::string::npos) << what;
      EXPECT_NE(what.find("4 entries"), std::string::npos) << what;
      EXPECT_NE(what.find("2 reactions"), std::string::npos) << what;
    }
  };
  expect_mismatch("simulate_direct", [&] {
    Rng rng(1);
    (void)simulate_direct(net, initial, rng, options);
  });
  expect_mismatch("simulate_direct", [&] {
    Rng rng(1);
    (void)simulate_direct(crn, initial, rng, options);  // compiling overload
  });
  expect_mismatch("simulate_next_reaction", [&] {
    Rng rng(1);
    (void)simulate_next_reaction(net, initial, rng, options);
  });
  expect_mismatch("simulate_next_reaction", [&] {
    Rng rng(1);
    (void)simulate_next_reaction(crn, initial, rng, options);
  });
  expect_mismatch("simulate_direct_dense", [&] {
    Rng rng(1);
    (void)simulate_direct_dense(crn, initial, rng, options);
  });

  // A correctly-sized vector still passes the boundary.
  options.rates = {1.0, 2.0};
  Rng rng(1);
  EXPECT_NO_THROW((void)simulate_direct(net, initial, rng, options));
}

TEST(NextReaction, AgreesWithDirectOnFinalState) {
  // Both exact SSA variants must drive min to completion.
  const Crn crn = compile::min_crn(2);
  Rng rng(3);
  const auto run =
      simulate_next_reaction(crn, crn.initial_configuration({8, 5}), rng);
  EXPECT_TRUE(run.exhausted);
  EXPECT_EQ(crn.output_count(run.final_config), 5);
}

TEST(NextReaction, HandlesCatalyticChains) {
  // Leader chain: L + X -> Y repeated via leader states.
  Crn crn("chain");
  crn.set_input_species({"X"});
  crn.set_output_species("Y");
  crn.set_leader_species("L");
  crn.add_reaction_str("L + X -> Y + L");
  Rng rng(9);
  const auto run =
      simulate_next_reaction(crn, crn.initial_configuration({25}), rng);
  EXPECT_TRUE(run.exhausted);
  EXPECT_EQ(crn.output_count(run.final_config), 25);
  EXPECT_EQ(run.events, 25u);
}

TEST(NextReaction, TimeDistributionMatchesDirectRoughly) {
  // Mean completion time of X -> Y from 1 molecule is 1 (Exp(1)); compare
  // the two simulators' sample means loosely.
  const Crn crn = compile::scale_crn(1);
  double direct_sum = 0.0;
  double nrm_sum = 0.0;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    Rng r1(100 + static_cast<std::uint64_t>(t));
    Rng r2(100 + static_cast<std::uint64_t>(t));
    direct_sum +=
        simulate_direct(crn, crn.initial_configuration({1}), r1).time;
    nrm_sum +=
        simulate_next_reaction(crn, crn.initial_configuration({1}), r2).time;
  }
  EXPECT_NEAR(direct_sum / trials, 1.0, 0.2);
  EXPECT_NEAR(nrm_sum / trials, 1.0, 0.2);
}

TEST(Population, RunsBimolecularMinToSilence) {
  const Crn crn = compile::min_crn(2);  // already bimolecular
  Rng rng(17);
  const auto run =
      run_population(crn, crn.initial_configuration({6, 9}), rng);
  EXPECT_TRUE(run.silent);
  EXPECT_EQ(crn.output_count(run.final_config), 6);
  EXPECT_GT(run.parallel_time, 0.0);
}

TEST(Population, RejectsHigherOrderReactions) {
  Crn crn("higher");
  crn.set_input_species({"X"});
  crn.set_output_species("Y");
  crn.add_reaction_str("3 X -> Y");
  Rng rng(1);
  EXPECT_THROW(
      (void)run_population(crn, crn.initial_configuration({6}), rng),
      std::invalid_argument);
  // After bimolecular conversion it runs fine.
  const Crn bi = crn::to_bimolecular(crn);
  Rng rng2(1);
  const auto run = run_population(bi, bi.initial_configuration({6}), rng2);
  EXPECT_TRUE(run.silent);
  EXPECT_EQ(bi.output_count(run.final_config), 2);
}

TEST(Population, LonePopulationHandlesUnimolecular) {
  // Single leader molecule must still fire its unimolecular reaction.
  Crn crn("lone");
  crn.set_input_species({"X"});
  crn.set_output_species("Y");
  crn.set_leader_species("L");
  crn.add_reaction_str("L -> 3 Y");
  Rng rng(2);
  const auto run = run_population(crn, crn.initial_configuration({0}), rng);
  EXPECT_TRUE(run.silent);
  EXPECT_EQ(crn.output_count(run.final_config), 3);
}

TEST(Population, ParallelTimeScalesWithLeaderBottleneck) {
  // Leader-driven absorption L + X -> L + Y is a sequential bottleneck:
  // expected parallel time grows linearly in n. Check monotone growth.
  Crn crn("leaderchain");
  crn.set_input_species({"X"});
  crn.set_output_species("Y");
  crn.set_leader_species("L");
  crn.add_reaction_str("L + X -> L + Y");
  double prev = 0.0;
  for (const Int n : {8, 32, 128}) {
    double total = 0.0;
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
      Rng rng(seed);
      const auto run =
          run_population(crn, crn.initial_configuration({n}), rng);
      EXPECT_TRUE(run.silent);
      EXPECT_EQ(crn.output_count(run.final_config), n);
      total += run.parallel_time;
    }
    EXPECT_GT(total, prev);
    prev = total;
  }
}

}  // namespace
}  // namespace crnkit::sim
