// Tests for the construction compilers: the Lemma 6.2 primitives, the
// Lemma 6.1 quilt-affine construction, the Theorem 3.1 1D construction, and
// the Theorem 9.2 leaderless construction — each verified against its source
// function by the exhaustive stable-computation checker, with parameterized
// sweeps over function families.
#include <gtest/gtest.h>

#include "compile/leaderless.h"
#include "compile/oned.h"
#include "compile/primitives.h"
#include "compile/quilt.h"
#include "crn/checks.h"
#include "fn/examples.h"
#include "verify/stable.h"

namespace crnkit::compile {
namespace {

using crn::Crn;
using math::Int;
using math::Rational;
using verify::check_stable_computation;
using verify::check_stable_computation_on_grid;

TEST(Primitives, MinComputesMin) {
  for (int k = 1; k <= 4; ++k) {
    const Crn crn = min_crn(k);
    fn::Point x(static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i) x[static_cast<std::size_t>(i)] = 2 + i;
    EXPECT_TRUE(check_stable_computation(crn, x, 2).ok) << "k=" << k;
  }
}

TEST(Primitives, ClampComputesMinusN) {
  for (const Int n : {0, 1, 3}) {
    const Crn crn = clamp_crn(n);
    for (Int x = 0; x <= 8; ++x) {
      EXPECT_TRUE(
          check_stable_computation(crn, {x}, std::max<Int>(0, x - n)).ok)
          << "n=" << n << " x=" << x;
    }
  }
}

TEST(Primitives, IndicatorComputesGatedSum) {
  // c(a, b, c_count) = a + [c_count > j] * b.
  for (const Int j : {0, 2}) {
    const Crn crn = indicator_crn(j);
    for (Int a = 0; a <= 2; ++a) {
      for (Int b = 0; b <= 2; ++b) {
        for (Int c = 0; c <= 4; ++c) {
          const Int expected = a + (c > j ? b : 0);
          EXPECT_TRUE(check_stable_computation(crn, {a, b, c}, expected).ok)
              << "j=" << j << " a=" << a << " b=" << b << " c=" << c;
        }
      }
    }
  }
}

TEST(Primitives, ConstantSeedsFromLeader) {
  for (const Int c : {0, 1, 5}) {
    const Crn crn = constant_crn(c);
    // Constant CRNs have no inputs; build the initial configuration by
    // hand (just the leader).
    crn::Config initial = crn.empty_configuration();
    initial[static_cast<std::size_t>(*crn.leader())] = 1;
    const auto graph = verify::explore(crn, initial);
    ASSERT_TRUE(graph.complete);
    // Terminal configuration carries exactly c outputs.
    Int final_y = -1;
    for (std::size_t i = 0; i < graph.size(); ++i) {
      const crn::Config config = graph.config(static_cast<int>(i));
      if (crn.is_silent(config)) {
        final_y = crn.output_count(config);
      }
    }
    EXPECT_EQ(final_y, c);
  }
}

TEST(Lemma61, Fig3aCrnComputesFlooredDivision) {
  const Crn crn = compile_quilt_affine(fn::examples::fig3a_quilt());
  EXPECT_TRUE(crn::is_output_oblivious(crn));
  const auto sweep =
      check_stable_computation_on_grid(crn, fn::examples::floor_3x_over_2(),
                                       9);
  EXPECT_TRUE(sweep.all_ok);
}

TEST(Lemma61, Fig3bCrnComputesBumpyQuilt) {
  const fn::QuiltAffine g = fn::examples::fig3b_quilt();
  const Crn crn = compile_quilt_affine(g);
  EXPECT_TRUE(crn::is_output_oblivious(crn));
  // One leader state per class of Z^2/3Z^2 plus L: check the census.
  EXPECT_EQ(crn.species_count(), 9u + 1 + 1 + 2);  // states + L + Y + inputs
  const auto sweep = check_stable_computation_on_grid(crn, g.as_function(), 5);
  EXPECT_TRUE(sweep.all_ok);
}

TEST(Lemma61, RejectsDecreasingOrNegative) {
  // Decreasing gradient.
  EXPECT_THROW(
      compile_quilt_affine(fn::QuiltAffine::affine({Rational(-1)},
                                                   Rational(0))),
      std::invalid_argument);
  // Negative offset at the origin.
  EXPECT_THROW(
      compile_quilt_affine(fn::QuiltAffine::affine({Rational(1)},
                                                   Rational(-2))),
      std::invalid_argument);
}

TEST(Lemma61, GradientZeroComponentIsIgnoredInput) {
  // g(x1,x2) = x1: input 2 is ignored entirely (no reaction consumes it).
  const fn::QuiltAffine g = fn::QuiltAffine::affine(
      {Rational(1), Rational(0)}, Rational(0), "proj1");
  const Crn crn = compile_quilt_affine(g);
  const auto sweep = check_stable_computation_on_grid(crn, g.as_function(), 4);
  EXPECT_TRUE(sweep.all_ok);
}

// --- Theorem 3.1 sweep over the 1D suite ---

class Theorem31Sweep : public ::testing::TestWithParam<int> {};

TEST_P(Theorem31Sweep, CompiledCrnStablyComputes) {
  const auto suite = fn::examples::oned_suite();
  const fn::DiscreteFunction& f =
      suite[static_cast<std::size_t>(GetParam())];
  const Crn crn = compile_oned(f);
  EXPECT_TRUE(crn::is_output_oblivious(crn));
  ASSERT_TRUE(crn.leader().has_value());
  for (Int x = 0; x <= 14; ++x) {
    EXPECT_TRUE(check_stable_computation(crn, {x}, f(x)).ok)
        << f.name() << " at x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(OnedSuite, Theorem31Sweep,
                         ::testing::Range(0, 8),
                         [](const auto& info) {
                           return "fn" + std::to_string(info.param);
                         });

TEST(Theorem31, StateCensusMatchesConstruction) {
  // For floor(3x/2): n=0, p=2 -> species X, Y, L, P0, P1 and 3 reactions.
  const Crn crn = compile_oned(fn::examples::floor_3x_over_2());
  EXPECT_EQ(crn.species_count(), 5u);
  EXPECT_EQ(crn.reactions().size(), 3u);
}

TEST(Theorem31, RejectsDecreasingFunction) {
  const fn::DiscreteFunction dec(
      1, [](const fn::Point& x) { return std::max<Int>(0, 5 - x[0]); },
      "decreasing");
  EXPECT_THROW((void)compile_oned(dec), std::invalid_argument);
}

// --- Theorem 9.2 sweep over the superadditive suite ---

class Theorem92Sweep : public ::testing::TestWithParam<int> {};

TEST_P(Theorem92Sweep, LeaderlessCrnStablyComputes) {
  const auto suite = fn::examples::oned_superadditive_suite();
  const fn::DiscreteFunction& f =
      suite[static_cast<std::size_t>(GetParam())];
  const Crn crn = compile_leaderless_oned(f);
  EXPECT_TRUE(crn::is_output_oblivious(crn));
  EXPECT_FALSE(crn.leader().has_value());
  for (Int x = 0; x <= 12; ++x) {
    EXPECT_TRUE(check_stable_computation(crn, {x}, f(x)).ok)
        << f.name() << " at x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(SuperadditiveSuite, Theorem92Sweep,
                         ::testing::Range(0, 6),
                         [](const auto& info) {
                           return "fn" + std::to_string(info.param);
                         });

TEST(Theorem92, RejectsNonSuperadditive) {
  // min(1, x) is semilinear nondecreasing but not superadditive
  // (Observation 9.1's example) — the compiler must reject it.
  EXPECT_THROW((void)compile_leaderless_oned(fn::examples::min_const1()),
               std::invalid_argument);
}

TEST(Theorem92, RejectsNonzeroOrigin) {
  const fn::DiscreteFunction f(
      1, [](const fn::Point& x) { return x[0] + 1; }, "x+1");
  EXPECT_THROW((void)compile_leaderless_oned(f), std::invalid_argument);
}

}  // namespace
}  // namespace crnkit::compile
