// Tests for semilinear sets (Definition 2.5): membership of threshold/mod
// atoms, Boolean structure, De Morgan consistency, and the domains of the
// paper's example functions expressed as sets.
#include <gtest/gtest.h>

#include "fn/semilinear_set.h"
#include "geom/arrangement.h"

namespace crnkit::fn {
namespace {

using math::Int;

TEST(SemilinearSet, ThresholdAtom) {
  const auto s = SemilinearSet::threshold({1, -1}, 1);  // x1 - x2 >= 1
  EXPECT_TRUE(s.contains({3, 1}));
  EXPECT_FALSE(s.contains({1, 1}));
  EXPECT_FALSE(s.contains({0, 5}));
  EXPECT_EQ(s.dimension(), 2);
}

TEST(SemilinearSet, ModAtom) {
  const auto s = SemilinearSet::mod({1, 1}, 0, 2);  // x1 + x2 even
  EXPECT_TRUE(s.contains({1, 1}));
  EXPECT_TRUE(s.contains({0, 0}));
  EXPECT_FALSE(s.contains({1, 2}));
  // Negative b normalizes into [0, c).
  const auto t = SemilinearSet::mod({1}, -1, 3);  // x = 2 (mod 3)
  EXPECT_TRUE(t.contains({2}));
  EXPECT_TRUE(t.contains({5}));
  EXPECT_FALSE(t.contains({3}));
}

TEST(SemilinearSet, BooleanStructure) {
  const auto ge2 = SemilinearSet::threshold({1}, 2);
  const auto even = SemilinearSet::mod({1}, 0, 2);
  const auto both = ge2 & even;
  EXPECT_TRUE(both.contains({4}));
  EXPECT_FALSE(both.contains({3}));
  EXPECT_FALSE(both.contains({0}));
  const auto either = ge2 | even;
  EXPECT_TRUE(either.contains({0}));
  EXPECT_TRUE(either.contains({3}));
  EXPECT_FALSE(either.contains({1}));
  const auto neither = ~either;
  EXPECT_TRUE(neither.contains({1}));
  EXPECT_FALSE(neither.contains({2}));
}

TEST(SemilinearSet, DeMorganOnGrid) {
  const auto a = SemilinearSet::threshold({2, -1}, 1);
  const auto b = SemilinearSet::mod({1, 2}, 1, 3);
  const auto lhs = ~(a | b);
  const auto rhs = ~a & ~b;
  geom::for_each_grid_point(2, 8, [&](const std::vector<Int>& x) {
    EXPECT_EQ(lhs.contains(x), rhs.contains(x));
  });
}

TEST(SemilinearSet, MinusAndCounts) {
  const auto ge1 = SemilinearSet::threshold({1}, 1);
  const auto ge5 = SemilinearSet::threshold({1}, 5);
  const auto band = ge1.minus(ge5);  // {1, 2, 3, 4}
  EXPECT_EQ(band.count_within(10), 4);
  EXPECT_EQ(SemilinearSet::all(1).count_within(10), 11);
  EXPECT_EQ(SemilinearSet::none(1).count_within(10), 0);
}

TEST(SemilinearSet, IndicatorLowersToFunction) {
  const auto diag = SemilinearSet::threshold({1, -1}, 0) &
                    SemilinearSet::threshold({-1, 1}, 0);  // x1 == x2
  const DiscreteFunction ind = diag.indicator("diag");
  EXPECT_EQ(ind(Point{3, 3}), 1);
  EXPECT_EQ(ind(Point{3, 4}), 0);
}

TEST(SemilinearSet, DomainOfMinPieces) {
  // The two domains of min's piecewise form partition N^2.
  const auto first = SemilinearSet::threshold({-1, 1}, 0);   // x1 <= x2
  const auto second = ~first;                                // x1 > x2
  geom::for_each_grid_point(2, 6, [&](const std::vector<Int>& x) {
    EXPECT_NE(first.contains(x), second.contains(x));
  });
}

TEST(SemilinearSet, DimensionMismatchThrows) {
  const auto a = SemilinearSet::threshold({1}, 0);
  const auto b = SemilinearSet::threshold({1, 1}, 0);
  EXPECT_THROW((void)(a & b), std::invalid_argument);
  EXPECT_THROW((void)a.contains({1, 2}), std::invalid_argument);
  EXPECT_THROW((void)SemilinearSet::mod({1}, 0, 0), std::invalid_argument);
}

TEST(SemilinearSet, RendersReadably) {
  const auto s = SemilinearSet::threshold({1, -1}, 1) |
                 SemilinearSet::mod({1, 1}, 0, 2);
  const std::string text = s.to_string();
  EXPECT_NE(text.find(">="), std::string::npos);
  EXPECT_NE(text.find("mod"), std::string::npos);
}

}  // namespace
}  // namespace crnkit::fn
