// Property-based sweeps: randomized instances exercise the invariants the
// paper's proofs rely on —
//   - random nondecreasing nonnegative quilt-affine functions compile
//     (Lemma 6.1) to CRNs proved correct on a grid;
//   - random eventually-periodic 1D functions compile (Theorem 3.1) and,
//     when superadditive, also leaderlessly (Theorem 9.2);
//   - random min-of-affine 2D functions go through the Theorem 5.2
//     compiler;
//   - the Fourier-Motzkin solver agrees with brute-force rational grid
//     search on random small systems;
//   - the reachability relation is additive (Section 2.2): C ->* D implies
//     C + E ->* D + E.
#include <gtest/gtest.h>

#include <random>

#include "compile/leaderless.h"
#include "compile/oned.h"
#include "compile/primitives.h"
#include "compile/quilt.h"
#include "compile/theorem52.h"
#include "fn/properties.h"
#include "geom/fourier_motzkin.h"
#include "verify/reachability.h"
#include "verify/simcheck.h"
#include "verify/stable.h"

namespace crnkit {
namespace {

using math::Int;
using math::Rational;

// --- Random quilt-affine functions -> Lemma 6.1 ---

/// Builds a random nondecreasing, nonnegative quilt-affine function by
/// drawing periodic finite differences >= 0 directly: pick B values then
/// raise the gradient until all differences are nonnegative.
fn::QuiltAffine random_quilt(std::mt19937_64& rng, int d, Int p) {
  std::uniform_int_distribution<Int> offset_dist(0, 2 * p);
  const Int classes = math::checked_pow(p, d);
  std::vector<Rational> offsets(static_cast<std::size_t>(classes));
  for (auto& b : offsets) b = Rational(offset_dist(rng));
  // Integer gradient in [1, 3]: dominates any offset jump of at most 2p
  // per unit step? Not necessarily — bump the gradient until monotone.
  std::uniform_int_distribution<Int> grad_dist(1, 3);
  math::RatVec gradient(static_cast<std::size_t>(d));
  for (auto& g : gradient) g = Rational(grad_dist(rng));
  for (Int raise = 0; raise < 64; ++raise) {
    try {
      fn::QuiltAffine g(gradient, p, offsets, "rand");
      if (g.is_nondecreasing() && g.is_nonnegative_everywhere()) return g;
    } catch (const std::invalid_argument&) {
      // non-integer valued cannot happen with integer data; fallthrough
    }
    for (auto& gi : gradient) gi += Rational(1);
  }
  throw std::logic_error("random_quilt: failed to build a monotone instance");
}

class QuiltPropertySweep : public ::testing::TestWithParam<int> {};

TEST_P(QuiltPropertySweep, Lemma61CompilesRandomInstances) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  std::uniform_int_distribution<int> dim_dist(1, 2);
  std::uniform_int_distribution<Int> period_dist(1, 3);
  const int d = dim_dist(rng);
  const Int p = period_dist(rng);
  const fn::QuiltAffine g = random_quilt(rng, d, p);
  const crn::Crn crn = compile::compile_quilt_affine(g);
  const auto sweep = verify::check_stable_computation_on_grid(
      crn, g.as_function(), d == 1 ? 8 : 4);
  EXPECT_TRUE(sweep.all_ok) << g.to_string();
}

INSTANTIATE_TEST_SUITE_P(RandomQuilts, QuiltPropertySweep,
                         ::testing::Range(0, 12));

// --- Random 1D functions -> Theorems 3.1 / 9.2 ---

struct RandomOned {
  fn::OneDStructure structure;
  fn::DiscreteFunction as_function() const {
    fn::OneDStructure s = structure;
    return fn::DiscreteFunction(
        1, [s](const fn::Point& x) { return s.evaluate(x[0]); }, "rand1d");
  }
};

RandomOned random_oned(std::mt19937_64& rng, bool force_origin_zero) {
  std::uniform_int_distribution<Int> n_dist(0, 4);
  std::uniform_int_distribution<Int> p_dist(1, 3);
  std::uniform_int_distribution<Int> delta_dist(0, 3);
  fn::OneDStructure s;
  s.n = n_dist(rng);
  s.p = p_dist(rng);
  s.deltas.resize(static_cast<std::size_t>(s.p));
  for (auto& d : s.deltas) d = delta_dist(rng);
  s.initial.resize(static_cast<std::size_t>(s.n + 1));
  Int value = force_origin_zero ? 0 : delta_dist(rng);
  for (Int i = 0; i <= s.n; ++i) {
    s.initial[static_cast<std::size_t>(i)] = value;
    value += delta_dist(rng);
  }
  return RandomOned{std::move(s)};
}

class OnedPropertySweep : public ::testing::TestWithParam<int> {};

TEST_P(OnedPropertySweep, Theorem31CompilesRandomInstances) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 7);
  const RandomOned instance = random_oned(rng, false);
  const fn::DiscreteFunction f = instance.as_function();
  const crn::Crn crn = compile::compile_oned(instance.structure, "rand1d");
  for (Int x = 0; x <= 12; ++x) {
    ASSERT_TRUE(verify::check_stable_computation(crn, {x}, f(x)).ok)
        << instance.structure.to_string() << " at x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomOnedFunctions, OnedPropertySweep,
                         ::testing::Range(0, 16));

class LeaderlessPropertySweep : public ::testing::TestWithParam<int> {};

TEST_P(LeaderlessPropertySweep, Theorem92CompilesSuperadditiveInstances) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 31337 + 3);
  // Rejection-sample until superadditive on a grid.
  for (int attempt = 0; attempt < 200; ++attempt) {
    const RandomOned instance = random_oned(rng, /*force_origin_zero=*/true);
    const fn::DiscreteFunction f = instance.as_function();
    if (fn::find_superadditive_violation(f, 16).has_value()) continue;
    const crn::Crn crn = compile::compile_leaderless_oned(f);
    for (Int x = 0; x <= 10; ++x) {
      ASSERT_TRUE(verify::check_stable_computation(crn, {x}, f(x)).ok)
          << instance.structure.to_string() << " at x=" << x;
    }
    return;
  }
  GTEST_SKIP() << "no superadditive instance drawn";
}

INSTANTIATE_TEST_SUITE_P(RandomSuperadditive, LeaderlessPropertySweep,
                         ::testing::Range(0, 10));

// --- Random min-of-affine 2D functions -> Theorem 5.2 ---

class MinOfAffineSweep : public ::testing::TestWithParam<int> {};

TEST_P(MinOfAffineSweep, Theorem52CompilesRandomMinOfAffine) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 65537 + 11);
  std::uniform_int_distribution<Int> coeff(0, 3);
  std::uniform_int_distribution<Int> off(0, 6);
  std::vector<fn::QuiltAffine> parts;
  const int m = 2 + GetParam() % 2;
  for (int k = 0; k < m; ++k) {
    // Nonzero gradient keeps the parts nondecreasing and non-trivial.
    Int a = coeff(rng);
    Int b = coeff(rng);
    if (a == 0 && b == 0) a = 1;
    parts.push_back(fn::QuiltAffine::affine({Rational(a), Rational(b)},
                                            Rational(off(rng)),
                                            "p" + std::to_string(k)));
  }
  const fn::MinOfQuiltAffine m_fn(parts);
  const fn::DiscreteFunction f = m_fn.as_function();
  compile::ObliviousSpec spec{f, 0, parts, {}};
  const crn::Crn crn = compile::compile_theorem52(spec);
  const auto result = verify::sim_check_points(
      crn, f, {{0, 0}, {1, 3}, {4, 2}, {5, 5}},
      verify::SimCheckOptions{2, 5'000'000,
                              static_cast<std::uint64_t>(GetParam())});
  EXPECT_TRUE(result.ok) << result.summary();
}

INSTANTIATE_TEST_SUITE_P(RandomMinOfAffine, MinOfAffineSweep,
                         ::testing::Range(0, 8));

// --- Fourier-Motzkin vs brute force ---

class FourierMotzkinSweep : public ::testing::TestWithParam<int> {};

TEST_P(FourierMotzkinSweep, AgreesWithGridBruteForce) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 2654435761u);
  std::uniform_int_distribution<Int> coeff(-2, 2);
  std::uniform_int_distribution<Int> rhs(-3, 3);
  std::uniform_int_distribution<int> count(1, 4);
  const int d = 2;
  std::vector<geom::LinearConstraint> constraints;
  const int k = count(rng);
  for (int i = 0; i < k; ++i) {
    math::RatVec coeffs{Rational(coeff(rng)), Rational(coeff(rng))};
    constraints.push_back(geom::ge(std::move(coeffs), Rational(rhs(rng))));
  }
  const bool fm = geom::feasible(constraints, d);
  // Brute force over a half-integer grid in [-8, 8]^2. If FM says feasible
  // its witness must satisfy everything; if a grid point satisfies all
  // constraints, FM must have said feasible. (FM infeasible + grid hit
  // would be a soundness bug; FM feasible with a witness outside the grid
  // is fine.)
  bool grid_hit = false;
  for (Int a = -16; a <= 16 && !grid_hit; ++a) {
    for (Int b = -16; b <= 16 && !grid_hit; ++b) {
      const math::RatVec z{Rational(a, 2), Rational(b, 2)};
      bool all = true;
      for (const auto& c : constraints) {
        if (!geom::satisfies(c, z)) {
          all = false;
          break;
        }
      }
      grid_hit = all;
    }
  }
  if (grid_hit) {
    EXPECT_TRUE(fm);
  }
  if (fm) {
    const auto witness = geom::find_solution(constraints, d);
    ASSERT_TRUE(witness.has_value());
    for (const auto& c : constraints) {
      EXPECT_TRUE(geom::satisfies(c, *witness)) << c.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSystems, FourierMotzkinSweep,
                         ::testing::Range(0, 24));

// --- Additivity of reachability (Section 2.2) ---

class AdditivitySweep : public ::testing::TestWithParam<int> {};

TEST_P(AdditivitySweep, ReachabilityIsAdditive) {
  // For the max CRN: sample a config D reachable from C, then check D + E
  // is reachable from C + E for a random extra vector E.
  const crn::Crn crn = compile::fig1_max_crn();
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 40503 + 1);
  std::uniform_int_distribution<Int> extra(0, 2);

  const crn::Config c = crn.initial_configuration({2, 2});
  const auto graph = verify::explore(crn, c);
  ASSERT_TRUE(graph.complete);
  std::uniform_int_distribution<std::size_t> pick(0, graph.size() - 1);
  const crn::Config d = graph.config(static_cast<int>(pick(rng)));

  crn::Config e(crn.species_count(), 0);
  for (auto& v : e) v = extra(rng);
  crn::Config c_plus(c);
  crn::Config d_plus(d);
  for (std::size_t i = 0; i < e.size(); ++i) {
    c_plus[i] += e[i];
    d_plus[i] += e[i];
  }
  const auto graph_plus = verify::explore(crn, c_plus);
  ASSERT_TRUE(graph_plus.complete);
  bool found = false;
  for (std::size_t i = 0; i < graph_plus.size(); ++i) {
    if (graph_plus.config(static_cast<int>(i)) == d_plus) {
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found);
}

INSTANTIATE_TEST_SUITE_P(RandomAdditivity, AdditivitySweep,
                         ::testing::Range(0, 10));

// --- Observation 2.1 as a property of every compiled CRN ---

TEST(ObliviousImpliesNondecreasing, CompiledOutputsNeverDecrease) {
  // On every reachable path of an output-oblivious CRN, the output count is
  // nondecreasing (syntactic consequence checked semantically).
  const crn::Crn crn = compile::compile_oned(
      fn::DiscreteFunction(1, [](const fn::Point& x) { return (3 * x[0]) / 2; },
                           "f"));
  const auto graph = verify::explore(crn, crn.initial_configuration({6}));
  ASSERT_TRUE(graph.complete);
  const auto y = static_cast<std::size_t>(crn.output_or_throw());
  for (std::size_t node = 0; node < graph.size(); ++node) {
    for (const std::int32_t next : graph.successors(static_cast<int>(node))) {
      EXPECT_GE(graph.view(next)[y], graph.view(static_cast<int>(node))[y]);
    }
  }
}

}  // namespace
}  // namespace crnkit
