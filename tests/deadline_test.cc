// Deadlines and cooperative cancellation end to end: the CancelToken
// contract, the explorer and ensemble safepoints that honor it, and the
// typed `deadline_exceeded` verdicts svc::Service builds on top — which
// must never be cached (how far an expired exploration got is wall-clock
// luck, not content).
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "scenario/registry.h"
#include "sim/ensemble.h"
#include "svc/api.h"
#include "svc/service.h"
#include "util/deadline.h"
#include "verify/reachability.h"

namespace crnkit {
namespace {

TEST(CancelToken, DefaultNeverExpires) {
  util::CancelToken token;
  EXPECT_FALSE(token.expired());
  EXPECT_FALSE(token.has_deadline());
  EXPECT_EQ(token.remaining_ms(), util::CancelToken::kNoDeadlineMs);
}

TEST(CancelToken, CancelWins) {
  util::CancelToken token;
  token.cancel();
  EXPECT_TRUE(token.expired());
  EXPECT_EQ(token.remaining_ms(), 0);
}

TEST(CancelToken, ZeroDeadlineMeansNone) {
  util::CancelToken token(0);
  EXPECT_FALSE(token.has_deadline());
  EXPECT_FALSE(token.expired());
}

TEST(CancelToken, DeadlineExpires) {
  util::CancelToken token(1);
  EXPECT_TRUE(token.has_deadline());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(token.expired());
  EXPECT_EQ(token.remaining_ms(), 0);
}

TEST(CancelToken, RemainingIsBoundedByTheDeadline) {
  util::CancelToken token(10'000);
  EXPECT_FALSE(token.expired());
  EXPECT_GT(token.remaining_ms(), 0);
  EXPECT_LE(token.remaining_ms(), 10'000);
}

TEST(ExploreCancel, ExpiredTokenStopsAtALevelBoundary) {
  const scenario::Scenario s =
      scenario::Registry::builtin().build("fig1/min");
  // The last grid point (4,4): min() can fire four times, so the
  // reachable set has several configs (the (0,0) front() point has one).
  const crn::Config initial =
      s.crn.initial_configuration(s.verify_points.back());

  // Uncancelled reference: the full (small) reachable set.
  verify::ExploreOptions options;
  options.max_configs = 100'000;
  options.threads = 1;
  const auto full = verify::explore(s.crn, initial, options);
  ASSERT_TRUE(full.complete);
  ASSERT_GT(full.size(), 1u);

  // A pre-cancelled token stops exploration at the first safepoint with
  // the typed flags set — a sound partial graph, not an error.
  util::CancelToken cancelled;
  cancelled.cancel();
  options.cancel = &cancelled;
  const auto cut = verify::explore(s.crn, initial, options);
  EXPECT_TRUE(cut.cancelled);
  EXPECT_FALSE(cut.complete);
  EXPECT_LT(cut.size(), full.size());
  EXPECT_GE(cut.size(), 1u) << "the root must always be interned";
}

TEST(EnsembleCancel, ExpiredTokenSkipsRemainingTrajectories) {
  const scenario::Scenario s =
      scenario::Registry::builtin().build("fig1/min");
  const sim::EnsembleRunner runner(s.crn);

  util::CancelToken cancelled;
  cancelled.cancel();
  sim::EnsembleOptions options;
  options.trajectories = 8;
  options.threads = 1;
  options.cancel = &cancelled;
  const sim::EnsembleResult result =
      runner.run_for_input(s.verify_points.front(), options);
  EXPECT_EQ(result.cancelled_count, 8);
  ASSERT_EQ(result.trajectories.size(), 8u);
  for (const sim::Trajectory& t : result.trajectories) {
    EXPECT_TRUE(t.skipped);
    EXPECT_FALSE(t.silent);
  }
}

TEST(ServiceDeadline, VerifyReturnsTypedDeadlineExceeded) {
  svc::Service service;
  svc::VerifyRequest req;
  req.target = "chain/compose-24";
  req.input = "7";
  req.expect = "7";
  req.force = true;
  req.deadline_ms = 1;  // expires long before the 2M+-config exploration
  const svc::VerifyResponse resp = service.verify(req);
  ASSERT_EQ(resp.points.size(), 1u);
  EXPECT_EQ(resp.points[0].status, "deadline_exceeded");
  EXPECT_FALSE(resp.points[0].ok);
  EXPECT_EQ(resp.deadline_exceeded, 1);
  EXPECT_EQ(resp.inconclusive, 1);
  EXPECT_FALSE(resp.ok);

  // Expired verdicts are never cached: the identical request must miss
  // again instead of serving yesterday's wall-clock luck.
  const svc::VerifyResponse again = service.verify(req);
  EXPECT_EQ(again.cache_hits, 0u);
  EXPECT_EQ(again.points[0].status, "deadline_exceeded");
}

TEST(ServiceDeadline, ServerDefaultAppliesWhenRequestHasNone) {
  svc::Service::Options options;
  options.default_deadline_ms = 1;
  svc::Service service(options);
  svc::VerifyRequest req;
  req.target = "chain/compose-24";
  req.input = "7";
  req.expect = "7";
  req.force = true;  // deadline_ms left at 0: the server default governs
  const svc::VerifyResponse resp = service.verify(req);
  ASSERT_EQ(resp.points.size(), 1u);
  EXPECT_EQ(resp.points[0].status, "deadline_exceeded");
}

TEST(ServiceDeadline, SimulateSkipsTrajectoriesOnExpiry) {
  svc::Service::Options options;
  options.default_deadline_ms = 1;
  svc::Service service(options);
  svc::SimulateRequest req;
  // 5000 serial trajectories of the 256-module chain are many
  // milliseconds of mandatory work: the 1ms budget expires mid-ensemble
  // and every remaining trajectory is skipped (skips cost one poll, so
  // the test itself stays fast).
  req.target = "chain/compose-256";
  req.input = "7";
  req.trajectories = 5000;
  req.threads = 1;
  const svc::SimulateResponse resp = service.simulate(req);
  EXPECT_TRUE(resp.deadline_exceeded);
  EXPECT_GT(resp.cancelled, 0);
  EXPECT_FALSE(resp.ok);
}

TEST(ServiceMemoryBudget, ClampDegradesInsteadOfOOM) {
  svc::Service::Options options;
  options.memory_budget_bytes = std::size_t{1} << 20;  // 1 MiB
  svc::Service service(options);

  bool degraded = false;
  const std::size_t clamped =
      service.clamp_to_memory_budget(1'000'000, /*width=*/10, &degraded);
  EXPECT_TRUE(degraded);
  EXPECT_LT(clamped, std::size_t{1'000'000});
  EXPECT_GE(clamped, std::size_t{1});

  // No budget: pass-through, no degradation.
  svc::Service unbounded;
  degraded = false;
  EXPECT_EQ(unbounded.clamp_to_memory_budget(1'000'000, 10, &degraded),
            std::size_t{1'000'000});
  EXPECT_FALSE(degraded);
}

TEST(ServiceMemoryBudget, VerifyReportsDegradedWhenClamped) {
  svc::Service::Options options;
  options.memory_budget_bytes = std::size_t{1} << 20;
  svc::Service service(options);
  svc::VerifyRequest req;
  req.target = "fig1/min";
  req.max_configs = 5'000'000;  // far over a 1 MiB budget
  const svc::VerifyResponse resp = service.verify(req);
  EXPECT_TRUE(resp.degraded);
  EXPECT_LT(resp.max_configs, std::size_t{5'000'000});
}

}  // namespace
}  // namespace crnkit
