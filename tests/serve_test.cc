// End-to-end tests for the `crnc serve` daemon core (svc::Server): the
// line-JSON protocol over real sockets, HTTP auto-detection on the same
// port, cross-connection proof-cache reuse, batch scheduling, 64-way
// concurrent clients with verdicts bit-identical to a one-shot service
// run, and clean shutdown with connections (and requests) in flight.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "svc/server.h"
#include "svc/service.h"
#include "util/fault_injector.h"
#include "util/json_value.h"

namespace crnkit::svc {
namespace {

using util::JsonValue;

/// Minimal blocking line client against 127.0.0.1:port.
class Client {
 public:
  explicit Client(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0);
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  void send_raw(const std::string& text) {
    std::size_t sent = 0;
    while (sent < text.size()) {
      const ssize_t n =
          ::send(fd_, text.data() + sent, text.size() - sent, MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      sent += static_cast<std::size_t>(n);
    }
  }

  std::string read_line() {
    for (;;) {
      const auto newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        std::string line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return buffer_;  // EOF: whatever is left
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  std::string read_to_eof() {
    std::string all = buffer_;
    buffer_.clear();
    char chunk[4096];
    for (;;) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return all;
      all.append(chunk, static_cast<std::size_t>(n));
    }
  }

  std::string roundtrip(const std::string& line) {
    send_raw(line + "\n");
    return read_line();
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

TEST(Serve, LineProtocolAnswersAndCachesAcrossConnections) {
  Service service;
  Server server(service);
  server.start();

  {
    Client client(server.port());
    const JsonValue pong = JsonValue::parse(client.roundtrip("{\"op\": \"ping\"}"));
    EXPECT_EQ(pong.get_int("schema_version", -1), 1);
    EXPECT_TRUE(pong.get_bool("pong", false));

    const JsonValue cold = JsonValue::parse(client.roundtrip(
        "{\"op\": \"verify\", \"target\": \"fig1/min\"}"));
    EXPECT_TRUE(cold.get_bool("ok", false));
    EXPECT_EQ(cold.get_int("cache_hits", -1), 0);
    EXPECT_GT(cold.get_int("cache_misses", 0), 0);
  }
  {
    // A new connection hits the entries the first one populated.
    Client client(server.port());
    const JsonValue warm = JsonValue::parse(client.roundtrip(
        "{\"op\": \"verify\", \"target\": \"fig1/min\"}"));
    EXPECT_TRUE(warm.get_bool("ok", false));
    EXPECT_EQ(warm.get_int("cache_misses", -1), 0);
    EXPECT_EQ(warm.get_int("cache_hits", 0),
              static_cast<std::int64_t>(warm.get("points").size()));
    for (const JsonValue& point : warm.get("points").items()) {
      EXPECT_TRUE(point.get_bool("cached", false));
    }
  }

  server.stop();
  EXPECT_EQ(server.stats().connections, 2u);
  EXPECT_EQ(server.stats().errors, 0u);
}

TEST(Serve, MalformedAndUnknownRequestsGetErrorResponses) {
  Service service;
  Server server(service);
  server.start();

  Client client(server.port());
  const JsonValue bad = JsonValue::parse(client.roundtrip("{not json"));
  EXPECT_EQ(bad.get_int("schema_version", -1), 1);
  EXPECT_TRUE(bad.has("error"));
  EXPECT_FALSE(bad.get_bool("ok", true));

  const JsonValue unknown =
      JsonValue::parse(client.roundtrip("{\"op\": \"frobnicate\"}"));
  EXPECT_TRUE(unknown.has("error"));

  server.stop();
  EXPECT_EQ(server.stats().errors, 2u);
}

TEST(Serve, BatchSchedulesSubRequestsAndKeepsOrder) {
  Service service;
  Server server(service);
  server.start();

  Client client(server.port());
  const JsonValue batch = JsonValue::parse(client.roundtrip(
      "{\"op\": \"batch\", \"requests\": ["
      "{\"op\": \"show\", \"target\": \"fig1/min\"}, "
      "{\"op\": \"verify\", \"target\": \"fig1/twice\"}, "
      "{\"op\": \"nope\"}]}"));
  EXPECT_EQ(batch.get_int("schema_version", -1), 1);
  ASSERT_EQ(batch.get("results").size(), 3u);
  EXPECT_EQ(batch.get("results").at(0).get_string("name", ""), "fig1/min");
  EXPECT_TRUE(batch.get("results").at(1).get_bool("ok", false));
  EXPECT_TRUE(batch.get("results").at(2).has("error"));

  server.stop();
}

TEST(Serve, HttpPostAndHealthzOnTheSamePort) {
  Service service;
  Server server(service);
  server.start();

  {
    Client client(server.port());
    const std::string body = "{\"target\": \"fig1/min\"}";
    client.send_raw("POST /v1/verify HTTP/1.1\r\nHost: x\r\nContent-Length: " +
                    std::to_string(body.size()) + "\r\n\r\n" + body);
    const std::string response = client.read_to_eof();
    EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
    const auto blank = response.find("\r\n\r\n");
    ASSERT_NE(blank, std::string::npos);
    const JsonValue parsed = JsonValue::parse(response.substr(blank + 4));
    EXPECT_EQ(parsed.get_int("schema_version", -1), 1);
    EXPECT_TRUE(parsed.get_bool("ok", false));
  }
  {
    Client client(server.port());
    client.send_raw("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
    const std::string response = client.read_to_eof();
    EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
    const auto blank = response.find("\r\n\r\n");
    ASSERT_NE(blank, std::string::npos);
    const JsonValue health = JsonValue::parse(response.substr(blank + 4));
    EXPECT_EQ(health.get_int("schema_version", -1), 1);
    EXPECT_FALSE(health.get_string("version", "").empty());
    EXPECT_FALSE(health.get_string("git", "").empty());
    EXPECT_GE(health.get("uptime_seconds").as_double(), 0.0);
    // The POST above verified fig1/min, so the shared cache has entries.
    EXPECT_GT(health.get_int("cache_entries", -1), 0);
    EXPECT_TRUE(health.get_bool("ok", false));
  }
  {
    Client client(server.port());
    client.send_raw("GET /nope HTTP/1.1\r\nHost: x\r\n\r\n");
    EXPECT_NE(client.read_to_eof().find("404"), std::string::npos);
  }

  server.stop();
}

TEST(Serve, SixtyFourConcurrentClientsGetIdenticalVerdicts) {
  // The acceptance bar: >= 64 concurrent mixed requests, every verdict
  // bit-identical to a one-shot run against a fresh service.
  Service reference;
  const std::string want_min = Server::dispatch_line(
      reference, "{\"op\": \"verify\", \"target\": \"fig1/min\"}");
  const std::string want_sim = Server::dispatch_line(
      reference,
      "{\"op\": \"simulate\", \"target\": \"fig1/twice\", "
      "\"trajectories\": 4, \"seed\": 7}");
  const JsonValue want_min_json = JsonValue::parse(want_min);
  const JsonValue want_sim_json = JsonValue::parse(want_sim);

  Service service;
  Server server(service);
  server.start();

  constexpr int kClients = 64;
  std::vector<std::string> responses(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      Client client(server.port());
      const auto slot = static_cast<std::size_t>(i);
      if (i % 3 != 2) {
        responses[slot] = client.roundtrip(
            "{\"op\": \"verify\", \"target\": \"fig1/min\"}");
      } else {
        responses[slot] = client.roundtrip(
            "{\"op\": \"simulate\", \"target\": \"fig1/twice\", "
            "\"trajectories\": 4, \"seed\": 7}");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  server.stop();

  for (int i = 0; i < kClients; ++i) {
    const JsonValue got =
        JsonValue::parse(responses[static_cast<std::size_t>(i)]);
    if (i % 3 != 2) {
      EXPECT_TRUE(got.get_bool("ok", false)) << i;
      EXPECT_EQ(got.get_int("proved", -1),
                want_min_json.get_int("proved", -2))
          << i;
      EXPECT_EQ(got.get_int("failed", -1), 0) << i;
      const auto& want_points = want_min_json.get("points").items();
      const auto& got_points = got.get("points").items();
      ASSERT_EQ(got_points.size(), want_points.size()) << i;
      for (std::size_t p = 0; p < want_points.size(); ++p) {
        EXPECT_EQ(got_points[p].get_string("x", "?"),
                  want_points[p].get_string("x", "!"));
        EXPECT_EQ(got_points[p].get_int("configs", -1),
                  want_points[p].get_int("configs", -2));
        EXPECT_EQ(got_points[p].get_string("status", "?"),
                  want_points[p].get_string("status", "!"));
      }
    } else {
      EXPECT_EQ(got.get_int("output", -1),
                want_sim_json.get_int("output", -2))
          << i;
      EXPECT_EQ(got.get_int("total_events", -1),
                want_sim_json.get_int("total_events", -2))
          << i;
      EXPECT_TRUE(got.get_bool("ok", false)) << i;
    }
  }
  EXPECT_EQ(server.stats().connections, 64u);
  EXPECT_EQ(server.stats().requests, 64u);
  EXPECT_EQ(server.stats().errors, 0u);
}

/// The per-op request counter's value for one exact series key, from the
/// structured `metrics` op (0 when the series does not exist yet).
std::int64_t scraped_counter(int port, const std::string& series) {
  Client client(port);
  const JsonValue doc =
      JsonValue::parse(client.roundtrip("{\"op\": \"metrics\"}"));
  const JsonValue* value = doc.get("metrics").get("counters").find(series);
  return value == nullptr ? 0 : value->as_int();
}

/// The sample value for `series` in a Prometheus text exposition (-1 when
/// the series is absent).
std::int64_t prom_counter(const std::string& text, const std::string& series) {
  const std::size_t at = text.find(series + " ");
  if (at == std::string::npos) return -1;
  return std::strtoll(text.c_str() + at + series.size() + 1, nullptr, 10);
}

TEST(Serve, MetricsScrapeAgreesWithAuthoritativeCountsUnderLoad) {
  // 64 clients hammer verify while a scraper polls GET /metrics the whole
  // time: scraped counters never decrease (sharded cells are monotone),
  // and once the clients drain, the scraped totals equal the
  // authoritative ones (server stats, proof-cache stats). The registry is
  // process-global, so everything is asserted as a before/after delta.
  const std::string kVerifyLine =
      "crnkit_server_requests_total{op=\"verify\",proto=\"line\"}";

  Service service;
  Server server(service);
  server.start();

  const std::int64_t requests_before =
      scraped_counter(server.port(), kVerifyLine);
  const std::int64_t hits_before =
      scraped_counter(server.port(), "crnkit_cache_hits_total");
  const std::int64_t misses_before =
      scraped_counter(server.port(), "crnkit_cache_misses_total");

  std::atomic<bool> done{false};
  std::atomic<int> scrapes{0};
  std::thread scraper([&] {
    std::int64_t last = requests_before;
    while (!done.load()) {
      Client client(server.port());
      client.send_raw("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
      const std::string response = client.read_to_eof();
      EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
      EXPECT_NE(response.find("text/plain; version=0.0.4"),
                std::string::npos);
      const std::int64_t now = prom_counter(response, kVerifyLine);
      if (now >= 0) {
        EXPECT_GE(now, last) << "scraped counter went backwards";
        last = now;
      }
      ++scrapes;
    }
  });

  constexpr int kClients = 64;
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&] {
      Client client(server.port());
      const JsonValue got = JsonValue::parse(client.roundtrip(
          "{\"op\": \"verify\", \"target\": \"fig1/min\"}"));
      EXPECT_TRUE(got.get_bool("ok", false));
    });
  }
  for (std::thread& t : threads) t.join();
  done.store(true);
  scraper.join();
  EXPECT_GT(scrapes.load(), 0);

  // Every client's roundtrip() returned, so every finish_request() ran:
  // the scrape must now agree exactly with the authoritative counters.
  EXPECT_EQ(scraped_counter(server.port(), kVerifyLine) - requests_before,
            kClients);
  const ProofCache::Stats cache = service.proof_cache().stats();
  EXPECT_EQ(scraped_counter(server.port(), "crnkit_cache_hits_total") -
                hits_before,
            static_cast<std::int64_t>(cache.hits));
  EXPECT_EQ(scraped_counter(server.port(), "crnkit_cache_misses_total") -
                misses_before,
            static_cast<std::int64_t>(cache.misses));
  server.stop();
}

TEST(Serve, AccessLogRecordsOpStatusAndCacheOutcome) {
  std::ostringstream log;
  Service service;
  Server::Options options;
  options.access_log = &log;
  Server server(service, options);
  server.start();

  {
    Client client(server.port());
    client.roundtrip("{\"op\": \"verify\", \"target\": \"fig1/min\"}");
    client.roundtrip("{\"op\": \"verify\", \"target\": \"fig1/min\"}");
    client.roundtrip("{not json");
  }
  server.stop();

  const std::string lines = log.str();
  // Cold verify misses the proof cache, the repeat hits it, the malformed
  // request logs as op=? with a 400.
  EXPECT_NE(lines.find("op=verify proto=line status=200"),
            std::string::npos);
  EXPECT_NE(lines.find("cache=miss"), std::string::npos);
  EXPECT_NE(lines.find("cache=hit"), std::string::npos);
  EXPECT_NE(lines.find("op=? proto=line status=400"), std::string::npos);
}

TEST(Serve, StopWithConnectionsAndRequestsInFlightIsClean) {
  Service service;
  auto server = std::make_unique<Server>(service);
  server->start();

  // One idle connection, one with a half-sent request, one mid-request.
  Client idle(server->port());
  Client half(server->port());
  half.send_raw("{\"op\": \"verify\", \"target\":");
  Client busy(server->port());
  busy.send_raw("{\"op\": \"verify\", \"target\": \"fig1/min\"}\n");

  // stop() must shut all three down and join without hanging; the
  // in-flight dispatch either finishes (full response line) or the
  // connection closes — never a torn response.
  server->stop();
  const std::string leftover = busy.read_to_eof();
  if (!leftover.empty()) {
    EXPECT_EQ(leftover.back(), '\n');
    const JsonValue parsed =
        JsonValue::parse(leftover.substr(0, leftover.size() - 1));
    EXPECT_EQ(parsed.get_int("schema_version", -1), 1);
  }
  EXPECT_EQ(idle.read_to_eof(), "");
  EXPECT_EQ(half.read_to_eof(), "");

  // A stopped server can be restarted on a fresh port.
  server = std::make_unique<Server>(service);
  server->start();
  Client again(server->port());
  EXPECT_TRUE(JsonValue::parse(again.roundtrip("{\"op\": \"ping\"}"))
                  .get_bool("pong", false));
  server->stop();
}

TEST(Serve, ConnectionGateShedsWithTypedRefusal) {
  Service service;
  Server::Options options;
  options.max_connections = 1;
  options.retry_after_ms = 120;
  Server server(service, options);
  server.start();

  // One connection holds the only slot (the ping proves its handler is
  // up and counted before anyone else connects).
  auto holder = std::make_unique<Client>(server.port());
  EXPECT_TRUE(JsonValue::parse(holder->roundtrip("{\"op\": \"ping\"}"))
                  .get_bool("pong", false));

  {
    // A line client over the limit: one typed retriable refusal, then
    // the server closes the connection.
    Client extra(server.port());
    const JsonValue shed = JsonValue::parse(
        extra.roundtrip("{\"op\": \"verify\", \"target\": \"fig1/min\"}"));
    EXPECT_EQ(shed.get_int("schema_version", -1), 1);
    EXPECT_EQ(shed.get_string("error", ""), "overloaded");
    EXPECT_TRUE(shed.get_bool("retriable", false));
    EXPECT_EQ(shed.get_int("retry_after_ms", -1), 120);
    EXPECT_FALSE(shed.get_bool("ok", true));
    EXPECT_EQ(extra.read_to_eof(), "");
  }
  {
    // An HTTP client over the limit: the same body under 503 with a
    // whole-seconds Retry-After hint (120ms rounds up to 1).
    Client extra(server.port());
    extra.send_raw(
        "POST /v1/verify HTTP/1.1\r\nHost: x\r\nContent-Length: 2\r\n\r\n{}");
    const std::string response = extra.read_to_eof();
    EXPECT_NE(response.find("HTTP/1.1 503 Service Unavailable"),
              std::string::npos);
    EXPECT_NE(response.find("Retry-After: 1"), std::string::npos);
    const auto blank = response.find("\r\n\r\n");
    ASSERT_NE(blank, std::string::npos);
    const JsonValue body = JsonValue::parse(response.substr(blank + 4));
    EXPECT_EQ(body.get_string("error", ""), "overloaded");
    EXPECT_TRUE(body.get_bool("retriable", false));
  }

  // Releasing the held slot restores service (the handler notices the
  // close asynchronously, so poll).
  holder.reset();
  bool recovered = false;
  for (int i = 0; i < 200 && !recovered; ++i) {
    Client probe(server.port());
    recovered = JsonValue::parse(probe.roundtrip("{\"op\": \"ping\"}"))
                    .get_bool("pong", false);
    if (!recovered) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  EXPECT_TRUE(recovered) << "capacity never came back after the holder left";

  server.stop();
  EXPECT_GE(server.stats().shed, 2u);
}

TEST(Serve, InflightGateShedsRequestsButPingStillAnswers) {
  // The dispatch-delay failpoint holds the single inflight slot for long
  // enough that concurrent requests deterministically hit the gate.
  util::FaultInjector::instance().configure(
      "server.dispatch.delay=always:arg=600");
  Service service;
  Server::Options options;
  options.max_inflight = 1;
  options.retry_after_ms = 25;
  Server server(service, options);
  server.start();

  constexpr int kClients = 6;
  std::vector<std::string> responses(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      Client client(server.port());
      responses[static_cast<std::size_t>(i)] = client.roundtrip(
          "{\"op\": \"show\", \"target\": \"fig1/min\"}");
    });
  }
  // By now the first request holds the slot for ~600ms; a saturated
  // server must still answer ping (how clients probe an overloaded
  // daemon) and must 503 an HTTP POST.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  {
    Client http(server.port());
    http.send_raw(
        "POST /v1/show HTTP/1.1\r\nHost: x\r\nContent-Length: 2\r\n\r\n{}");
    const std::string response = http.read_to_eof();
    EXPECT_NE(response.find("503"), std::string::npos);
    EXPECT_NE(response.find("Retry-After:"), std::string::npos);
  }
  {
    Client probe(server.port());
    EXPECT_TRUE(JsonValue::parse(probe.roundtrip("{\"op\": \"ping\"}"))
                    .get_bool("pong", false));
  }
  for (std::thread& t : threads) t.join();
  server.stop();
  util::FaultInjector::instance().reset();

  int served = 0;
  std::uint64_t shed = 0;
  for (const std::string& response : responses) {
    const JsonValue parsed = JsonValue::parse(response);
    if (parsed.get_string("error", "") == "overloaded") {
      ++shed;
      EXPECT_TRUE(parsed.get_bool("retriable", false));
      EXPECT_EQ(parsed.get_int("retry_after_ms", -1), 25);
    } else {
      ++served;
      EXPECT_EQ(parsed.get_string("name", ""), "fig1/min");
    }
  }
  EXPECT_GT(served, 0) << "the gate must admit work, not just refuse it";
  EXPECT_GT(shed, 0u) << "six concurrent requests against one slot";
  // Every line-protocol shed is counted (the HTTP 503 above adds one more).
  EXPECT_EQ(server.stats().shed, shed + 1);
}

}  // namespace
}  // namespace crnkit::svc
