// Growth/rehash stress tests for verify::ConfigStore, the sharded
// open-addressing interner behind the exact verifier. The scenarios the
// explorer never quite reaches in unit tests: interleaved interning
// across many shards and levels that pushes every shard past (at least)
// two slot-table resize thresholds, with pending (staged) entries alive
// while a shard grows — asserting that committed ids, arena contents, and
// membership lookups all stay stable through the rehashes.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "verify/config_store.h"

namespace crnkit::verify {
namespace {

using math::Int;

/// Deterministically distinct configuration #i over `width` species.
std::vector<Int> nth_config(std::size_t i, std::size_t width) {
  std::vector<Int> c(width);
  for (std::size_t s = 0; s < width; ++s) {
    c[s] = static_cast<Int>((i >> (8 * (s % 4))) & 0xff) +
           static_cast<Int>(s * 1000);
  }
  c[0] = static_cast<Int>(i % 97);
  c[width - 1] = static_cast<Int>(i);  // uniqueness anchor
  return c;
}

TEST(ConfigStore, GrowthKeepsIdsAndLookupsStableAcrossLevels) {
  // Each of the 64 shards starts with 64 slots and grows at 62.5% load:
  // first resize near 40 entries, second near 80. 12k distinct
  // configurations spread hash-uniformly over the shards push every shard
  // past both thresholds (~188 entries/shard mean), interleaved over many
  // commit levels so rehashes happen with committed *and* pending entries
  // in the table.
  constexpr std::size_t kWidth = 5;
  constexpr std::size_t kTotal = 12'000;
  constexpr std::size_t kPerLevel = 750;

  ConfigStore store(kWidth);
  std::map<std::size_t, std::vector<Int>> by_id;  // id -> configuration

  std::size_t next = 0;
  while (next < kTotal) {
    const std::size_t level_end = std::min(kTotal, next + kPerLevel);
    std::vector<std::pair<std::int64_t, std::size_t>> staged;  // handle, i
    for (; next < level_end; ++next) {
      const std::vector<Int> c = nth_config(next, kWidth);
      const auto result = store.stage(store.hash(c.data()), c.data());
      ASSERT_TRUE(result.created) << "config " << next
                                  << " unexpectedly already present";
      staged.push_back({result.handle, next});
    }
    const std::size_t before = store.size();
    const std::size_t accepted = store.commit(kPerLevel);
    ASSERT_EQ(accepted, staged.size());
    ASSERT_EQ(store.size(), before + accepted);
    for (const auto& [handle, i] : staged) {
      const std::int32_t id = store.resolve(handle);
      ASSERT_GE(id, 0);
      by_id[static_cast<std::size_t>(id)] = nth_config(i, kWidth);
    }
    store.finish_level();
  }
  ASSERT_EQ(store.size(), kTotal);

  // Every committed id still views its own configuration...
  for (const auto& [id, expected] : by_id) {
    const ConfigStore::Count* row =
        store.view(static_cast<std::int32_t>(id));
    for (std::size_t s = 0; s < kWidth; ++s) {
      ASSERT_EQ(static_cast<Int>(row[s]), expected[s])
          << "id " << id << " species " << s;
    }
  }
  // ...and re-interning any of them finds the existing id instead of
  // creating a duplicate (lookups survived every rehash).
  for (const auto& [id, expected] : by_id) {
    const auto result = store.stage(store.hash(expected.data()),
                                    expected.data());
    EXPECT_FALSE(result.created) << "id " << id << " duplicated";
    EXPECT_EQ(result.handle, static_cast<std::int64_t>(id));
  }
  EXPECT_EQ(store.staged_count(), 0u);
}

TEST(ConfigStore, GrowthWithPendingEntriesInOneLevel) {
  // A single huge level: shards must grow while most of their entries are
  // still *pending* (the staged_slot repointing path in grow()), and the
  // level's (shard, stage-order) ids must come out exactly as commit
  // assigns them.
  constexpr std::size_t kWidth = 4;
  constexpr std::size_t kTotal = 9'000;

  ConfigStore store(kWidth);
  std::vector<std::int64_t> handles;
  handles.reserve(kTotal);
  for (std::size_t i = 0; i < kTotal; ++i) {
    const std::vector<Int> c = nth_config(i, kWidth);
    const auto result = store.stage(store.hash(c.data()), c.data());
    ASSERT_TRUE(result.created);
    // Staging the same configuration again must hit the pending entry,
    // even after later insertions force rehashes around it.
    const auto again = store.stage(store.hash(c.data()), c.data());
    EXPECT_FALSE(again.created);
    EXPECT_EQ(again.handle, result.handle);
    handles.push_back(result.handle);
  }
  ASSERT_EQ(store.staged_count(), kTotal);
  ASSERT_EQ(store.commit(kTotal), kTotal);

  std::vector<std::int32_t> ids(kTotal);
  for (std::size_t i = 0; i < kTotal; ++i) {
    const std::int32_t id = store.resolve(handles[i]);  // pre-finish_level
    ASSERT_GE(id, 0);
    ids[i] = id;
    const std::vector<Int> expected = nth_config(i, kWidth);
    const ConfigStore::Count* row = store.view(id);
    for (std::size_t s = 0; s < kWidth; ++s) {
      ASSERT_EQ(static_cast<Int>(row[s]), expected[s]) << "i=" << i;
    }
  }
  store.finish_level();

  // After commit, the same configurations resolve by lookup to the same
  // ids through stage() on the now-rehashed committed tables.
  for (std::size_t i = 0; i < kTotal; ++i) {
    const std::vector<Int> c = nth_config(i, kWidth);
    const auto result = store.stage(store.hash(c.data()), c.data());
    EXPECT_FALSE(result.created);
    EXPECT_EQ(result.handle, static_cast<std::int64_t>(ids[i]));
  }
}

TEST(ConfigStore, BudgetRejectsRebuildShardsConsistently) {
  // Commit under a budget smaller than the staged count: rejected entries
  // must vanish from the tables (shard rebuild path), and every accepted
  // id must stay found; the rejected configurations intern as *new* later.
  constexpr std::size_t kWidth = 3;
  constexpr std::size_t kTotal = 4'000;
  constexpr std::size_t kBudget = 1'500;

  ConfigStore store(kWidth);
  std::vector<std::int64_t> handles;
  for (std::size_t i = 0; i < kTotal; ++i) {
    const std::vector<Int> c = nth_config(i, kWidth);
    handles.push_back(store.stage(store.hash(c.data()), c.data()).handle);
  }
  ASSERT_EQ(store.commit(kBudget), kBudget);
  std::size_t kept = 0;
  std::vector<bool> accepted(kTotal, false);
  for (std::size_t i = 0; i < kTotal; ++i) {
    const std::int32_t id = store.resolve(handles[i]);
    if (id >= 0) {
      accepted[i] = true;
      ++kept;
    }
  }
  EXPECT_EQ(kept, kBudget);
  store.finish_level();

  for (std::size_t i = 0; i < kTotal; ++i) {
    const std::vector<Int> c = nth_config(i, kWidth);
    const auto result = store.stage(store.hash(c.data()), c.data());
    // Accepted entries are found; rejected ones were really removed and
    // re-intern as fresh pending entries.
    EXPECT_EQ(result.created, !accepted[i]) << "i=" << i;
  }
}

}  // namespace
}  // namespace crnkit::verify
