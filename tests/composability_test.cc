// Tests for the executable Lemma 2.3: strip output-consuming reactions and
// re-check. min's CRN (already oblivious) is trivially composable; the max
// CRN stripped of K + Y -> 0 computes x1 + x2, certifying non-composability.
#include <gtest/gtest.h>

#include "compile/oned.h"
#include "compile/primitives.h"
#include "fn/examples.h"
#include "verify/composability.h"
#include "verify/stable.h"

namespace crnkit::verify {
namespace {

using math::Int;

TEST(Composability, ObliviousCrnIsTriviallyComposable) {
  const auto report =
      check_composability(compile::min_crn(2), fn::examples::min2(), 4);
  EXPECT_TRUE(report.already_oblivious);
  EXPECT_TRUE(report.composable());
  EXPECT_EQ(report.reactions_removed, 0);
}

TEST(Composability, MaxCrnIsNotComposable) {
  const auto report =
      check_composability(compile::fig1_max_crn(), fn::examples::max2(), 4);
  EXPECT_FALSE(report.already_oblivious);
  EXPECT_EQ(report.reactions_removed, 1);  // K + Y -> 0
  EXPECT_FALSE(report.composable()) << report.summary();
}

TEST(Composability, StrippedMaxComputesSum) {
  // Lemma 2.3's proof mechanics, concretely: without K + Y -> 0 the Fig 1
  // max CRN produces one Y per input, i.e. x1 + x2.
  const crn::Crn stripped =
      strip_output_consumers(compile::fig1_max_crn());
  const fn::DiscreteFunction sum(
      2, [](const fn::Point& x) { return x[0] + x[1]; }, "sum");
  const auto sweep = check_stable_computation_on_grid(stripped, sum, 4);
  EXPECT_TRUE(sweep.all_ok);
}

TEST(Composability, Fig2LeaderlessMin1IsNotComposable) {
  // Stripping 2Y -> Y from the leaderless min(1,x) CRN leaves X -> Y,
  // which computes x, not min(1,x).
  const auto report = check_composability(compile::fig2_min1_leaderless(),
                                          fn::examples::min_const1(), 5);
  EXPECT_FALSE(report.composable());
  const crn::Crn stripped =
      strip_output_consumers(compile::fig2_min1_leaderless());
  const fn::DiscreteFunction identity(
      1, [](const fn::Point& x) { return x[0]; }, "x");
  EXPECT_TRUE(check_stable_computation_on_grid(stripped, identity, 5).all_ok);
}

TEST(Composability, CompiledConstructionsAreComposable) {
  // Everything the Theorem 3.1 compiler emits is output-oblivious, hence
  // composable by construction.
  for (const auto& f : fn::examples::oned_suite()) {
    const auto report =
        check_composability(compile::compile_oned(f), f, 6);
    EXPECT_TRUE(report.already_oblivious) << f.name();
    EXPECT_TRUE(report.composable()) << f.name();
  }
}

TEST(Composability, SummaryIsInformative) {
  const auto report =
      check_composability(compile::fig1_max_crn(), fn::examples::max2(), 3);
  const std::string s = report.summary();
  EXPECT_NE(s.find("NOT composable"), std::string::npos) << s;
}

}  // namespace
}  // namespace crnkit::verify
