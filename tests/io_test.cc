// Tests for CRN text serialization: round-trips, role preservation, and
// malformed-input rejection.
#include <gtest/gtest.h>

#include "compile/oned.h"
#include "compile/primitives.h"
#include "crn/io.h"
#include "fn/examples.h"
#include "verify/stable.h"

namespace crnkit::crn {
namespace {

TEST(Io, RoundTripMin) {
  const Crn original = compile::min_crn(2);
  const Crn parsed = from_text(to_text(original));
  EXPECT_EQ(parsed.name(), original.name());
  EXPECT_EQ(parsed.species_count(), original.species_count());
  EXPECT_EQ(parsed.reactions().size(), original.reactions().size());
  EXPECT_EQ(to_text(parsed), to_text(original));
}

TEST(Io, RoundTripPreservesRolesAndIds) {
  const Crn original = compile::compile_oned(fn::examples::floor_3x_over_2());
  const Crn parsed = from_text(to_text(original));
  ASSERT_TRUE(parsed.leader().has_value());
  EXPECT_EQ(parsed.species_name(*parsed.leader()),
            original.species_name(*original.leader()));
  EXPECT_EQ(parsed.species_name(parsed.output_or_throw()),
            original.species_name(original.output_or_throw()));
  // The parsed CRN must compute the same function.
  for (math::Int x = 0; x <= 8; ++x) {
    EXPECT_TRUE(
        verify::check_stable_computation(parsed, {x}, (3 * x) / 2).ok)
        << x;
  }
}

TEST(Io, RoundTripMaxWithEmptyProducts) {
  // K + Y -> 0 must survive the round trip.
  const Crn original = compile::fig1_max_crn();
  const Crn parsed = from_text(to_text(original));
  EXPECT_EQ(parsed.reactions().size(), 4u);
  EXPECT_TRUE(
      verify::check_stable_computation(parsed, {3, 5}, 5).ok);
}

TEST(Io, ParseHandWrittenText) {
  const Crn crn = from_text(R"(
crn doubling
inputs X
output Y
rxn X -> 2 Y
)");
  EXPECT_EQ(crn.name(), "doubling");
  EXPECT_TRUE(verify::check_stable_computation(crn, {4}, 8).ok);
}

TEST(Io, CommentsAndBlankLinesIgnored) {
  const Crn crn = from_text(
      "# a comment\n\ncrn c\n# another\ninputs X\noutput Y\nrxn X -> Y\n");
  EXPECT_EQ(crn.reactions().size(), 1u);
}

TEST(Io, TrailingCommentsIgnored) {
  const Crn crn = from_text(
      "crn c\ninputs X   # the input\noutput Y\nrxn X -> 2 Y  # doubles\n");
  EXPECT_EQ(crn.reactions().size(), 1u);
  EXPECT_TRUE(verify::check_stable_computation(crn, {3}, 6).ok);
}

TEST(Io, ReversibleReactionExpandsToBothDirections) {
  const Crn crn = from_text(R"(
crn dimer
inputs X
output Y
rxn 2 X <-> X2
rxn X + X2 -> Y
)");
  ASSERT_EQ(crn.reactions().size(), 3u);
  // Footnote 5's 3X -> Y in bimolecular form: f(x) = floor(x/3).
  EXPECT_TRUE(verify::check_stable_computation(crn, {7}, 2).ok);
}

TEST(Io, ReversibleWithoutSpaces) {
  // `A+B<->C` must expand exactly like its spaced form.
  const Crn crn = from_text(R"(
crn tight
inputs A B
output Y
rxn A+B<->C
rxn C -> Y
)");
  ASSERT_EQ(crn.reactions().size(), 3u);
  EXPECT_TRUE(crn.has_species("C"));
  // No mangled species like "B<" may appear.
  for (const std::string& name : crn.species_table().names()) {
    EXPECT_EQ(name.find('<'), std::string::npos) << name;
    EXPECT_EQ(name.find('>'), std::string::npos) << name;
  }
  EXPECT_TRUE(verify::check_stable_computation(crn, {2, 2}, 2).ok);
}

TEST(Io, ReversibleWithTrailingComment) {
  const Crn crn = from_text(
      "crn c\ninputs X\noutput Y\nrxn 2 X <-> X2  # dimerization\n"
      "rxn X + X2 -> Y\n");
  ASSERT_EQ(crn.reactions().size(), 3u);
  EXPECT_FALSE(crn.has_species("#"));
  EXPECT_TRUE(verify::check_stable_computation(crn, {7}, 2).ok);
}

TEST(Io, ReversibleEmptySideParsesToTwoDirectedReactions) {
  // `<-> C` is the empty left side: expansion gives 0 -> C and C -> 0.
  const Crn crn = from_text("crn c\noutput Y\nrxn <-> C\n");
  ASSERT_EQ(crn.reactions().size(), 2u);
  EXPECT_TRUE(crn.reactions()[0].reactants().empty());
  ASSERT_EQ(crn.reactions()[0].products().size(), 1u);
  EXPECT_TRUE(crn.reactions()[1].products().empty());
  ASSERT_EQ(crn.reactions()[1].reactants().size(), 1u);
  EXPECT_EQ(crn.species_name(crn.reactions()[1].reactants()[0].species),
            "C");
}

TEST(Io, MultipleArrowsAreRejectedWithLineNumbers) {
  const auto message_of = [](const std::string& text) {
    try {
      (void)from_text(text);
    } catch (const std::invalid_argument& e) {
      return std::string(e.what());
    }
    return std::string("(no throw)");
  };
  // A second '->' must not silently become part of a species name.
  EXPECT_NE(message_of("crn c\nrxn A -> B -> C\n").find("line 2"),
            std::string::npos);
  EXPECT_NE(message_of("crn c\nrxn A -> B -> C\n").find("multiple '->'"),
            std::string::npos);
  EXPECT_NE(message_of("crn c\nrxn A <-> B <-> C\n").find("multiple '<->'"),
            std::string::npos);
  EXPECT_NE(message_of("crn c\nrxn A <-> B -> C\n").find("line 2"),
            std::string::npos);
  EXPECT_NE(message_of("crn c\ninputs X\nrxn A -> B -> C\n").find("line 3"),
            std::string::npos);
}

TEST(Io, HugeCoefficientIsParseErrorNotCrash) {
  EXPECT_THROW(
      (void)from_text("crn c\nrxn 99999999999999999999 X -> Y\n"),
      std::invalid_argument);
  Crn crn("direct");
  EXPECT_THROW(crn.add_reaction_str("99999999999999999999 X -> Y"),
               std::invalid_argument);
}

TEST(Io, AddReactionStrRefusesReversibleArrow) {
  Crn crn("direct");
  EXPECT_THROW(crn.add_reaction_str("A <-> B"), std::invalid_argument);
}

TEST(Io, RejectsMalformedInput) {
  EXPECT_THROW((void)from_text("inputs X\noutput Y\n"),
               std::invalid_argument);  // missing header
  EXPECT_THROW((void)from_text("crn c\nbogus line\n"),
               std::invalid_argument);
  EXPECT_THROW((void)from_text("crn c\noutput\n"), std::invalid_argument);
  EXPECT_THROW((void)from_text("crn c\nrxn A + B\n"), std::invalid_argument);
}

TEST(Io, ErrorsCarryLineNumbers) {
  const auto message_of = [](const std::string& text) {
    try {
      (void)from_text(text);
    } catch (const std::invalid_argument& e) {
      return std::string(e.what());
    }
    return std::string("(no throw)");
  };
  EXPECT_NE(message_of("crn c\nbogus line\n").find("line 2"),
            std::string::npos);
  EXPECT_NE(message_of("crn c\ninputs X\n\n# c\nrxn A + B\n").find("line 5"),
            std::string::npos);
  EXPECT_NE(message_of("crn c\noutput\n").find("line 2"),
            std::string::npos);
}

}  // namespace
}  // namespace crnkit::crn
