// Tests for CRN text serialization: round-trips, role preservation, and
// malformed-input rejection.
#include <gtest/gtest.h>

#include "compile/oned.h"
#include "compile/primitives.h"
#include "crn/io.h"
#include "fn/examples.h"
#include "verify/stable.h"

namespace crnkit::crn {
namespace {

TEST(Io, RoundTripMin) {
  const Crn original = compile::min_crn(2);
  const Crn parsed = from_text(to_text(original));
  EXPECT_EQ(parsed.name(), original.name());
  EXPECT_EQ(parsed.species_count(), original.species_count());
  EXPECT_EQ(parsed.reactions().size(), original.reactions().size());
  EXPECT_EQ(to_text(parsed), to_text(original));
}

TEST(Io, RoundTripPreservesRolesAndIds) {
  const Crn original = compile::compile_oned(fn::examples::floor_3x_over_2());
  const Crn parsed = from_text(to_text(original));
  ASSERT_TRUE(parsed.leader().has_value());
  EXPECT_EQ(parsed.species_name(*parsed.leader()),
            original.species_name(*original.leader()));
  EXPECT_EQ(parsed.species_name(parsed.output_or_throw()),
            original.species_name(original.output_or_throw()));
  // The parsed CRN must compute the same function.
  for (math::Int x = 0; x <= 8; ++x) {
    EXPECT_TRUE(
        verify::check_stable_computation(parsed, {x}, (3 * x) / 2).ok)
        << x;
  }
}

TEST(Io, RoundTripMaxWithEmptyProducts) {
  // K + Y -> 0 must survive the round trip.
  const Crn original = compile::fig1_max_crn();
  const Crn parsed = from_text(to_text(original));
  EXPECT_EQ(parsed.reactions().size(), 4u);
  EXPECT_TRUE(
      verify::check_stable_computation(parsed, {3, 5}, 5).ok);
}

TEST(Io, ParseHandWrittenText) {
  const Crn crn = from_text(R"(
crn doubling
inputs X
output Y
rxn X -> 2 Y
)");
  EXPECT_EQ(crn.name(), "doubling");
  EXPECT_TRUE(verify::check_stable_computation(crn, {4}, 8).ok);
}

TEST(Io, CommentsAndBlankLinesIgnored) {
  const Crn crn = from_text(
      "# a comment\n\ncrn c\n# another\ninputs X\noutput Y\nrxn X -> Y\n");
  EXPECT_EQ(crn.reactions().size(), 1u);
}

TEST(Io, RejectsMalformedInput) {
  EXPECT_THROW((void)from_text("inputs X\noutput Y\n"),
               std::invalid_argument);  // missing header
  EXPECT_THROW((void)from_text("crn c\nbogus line\n"),
               std::invalid_argument);
  EXPECT_THROW((void)from_text("crn c\noutput\n"), std::invalid_argument);
  EXPECT_THROW((void)from_text("crn c\nrxn A + B\n"), std::invalid_argument);
}

}  // namespace
}  // namespace crnkit::crn
