// Tests for monotone predicate compilation: atoms, AND/OR structure,
// exhaustive verification of the compiled indicator CRNs, and downstream
// composability of predicates (they are ordinary output-oblivious modules).
#include <gtest/gtest.h>

#include "compile/predicate.h"
#include "compile/primitives.h"
#include "crn/checks.h"
#include "crn/compose.h"
#include "fn/properties.h"
#include "geom/arrangement.h"
#include "verify/stable.h"

namespace crnkit::compile {
namespace {

using math::Int;

void expect_computes(const crn::Crn& crn, const MonotoneFormula& formula,
                     Int grid_max) {
  const auto sweep = verify::check_stable_computation_on_grid(
      crn, formula.indicator(), grid_max);
  EXPECT_TRUE(sweep.all_ok) << sweep.failures.size() << " failures";
}

TEST(Predicate, SingleAtomThreshold) {
  // [x >= 1] is exactly Fig 2's min(1, x).
  const auto formula = MonotoneFormula::atom({1}, 1);
  const crn::Crn crn = compile_monotone_predicate(formula);
  EXPECT_TRUE(crn::is_output_oblivious(crn));
  ASSERT_TRUE(crn.leader().has_value());
  expect_computes(crn, formula, 6);
}

TEST(Predicate, WeightedAtom) {
  // [2 x1 + x2 >= 5].
  const auto formula = MonotoneFormula::atom({2, 1}, 5);
  EXPECT_TRUE(formula.evaluate({2, 1}));
  EXPECT_FALSE(formula.evaluate({1, 2}));
  const crn::Crn crn = compile_monotone_predicate(formula);
  expect_computes(crn, formula, 4);
}

TEST(Predicate, TrivialAtomIsConstantTrue) {
  const auto formula = MonotoneFormula::atom({1, 1}, 0);
  const crn::Crn crn = compile_monotone_predicate(formula);
  expect_computes(crn, formula, 3);
}

TEST(Predicate, Conjunction) {
  // [x1 >= 2] AND [x2 >= 1].
  const auto formula =
      MonotoneFormula::atom({1, 0}, 2) && MonotoneFormula::atom({0, 1}, 1);
  const crn::Crn crn = compile_monotone_predicate(formula);
  expect_computes(crn, formula, 4);
}

TEST(Predicate, Disjunction) {
  // [x1 >= 3] OR [x2 >= 2].
  const auto formula =
      MonotoneFormula::atom({1, 0}, 3) || MonotoneFormula::atom({0, 1}, 2);
  const crn::Crn crn = compile_monotone_predicate(formula);
  expect_computes(crn, formula, 4);
}

TEST(Predicate, NestedFormula) {
  // ([x1 >= 1] AND [x2 >= 1]) OR [x1 + x2 >= 5].
  const auto formula =
      (MonotoneFormula::atom({1, 0}, 1) && MonotoneFormula::atom({0, 1}, 1)) ||
      MonotoneFormula::atom({1, 1}, 5);
  const crn::Crn crn = compile_monotone_predicate(formula);
  expect_computes(crn, formula, 5);
}

TEST(Predicate, IndicatorIsNondecreasing) {
  // Monotone formulas have nondecreasing indicators (the reason they are
  // obliviously-computable at all, Observation 2.1).
  const auto formula =
      (MonotoneFormula::atom({2, 1}, 4) || MonotoneFormula::atom({0, 1}, 3)) &&
      MonotoneFormula::atom({1, 1}, 2);
  EXPECT_FALSE(
      fn::find_nondecreasing_violation(formula.indicator(), 6).has_value());
}

TEST(Predicate, RejectsNegativeCoefficients) {
  EXPECT_THROW((void)MonotoneFormula::atom({1, -1}, 0),
               std::invalid_argument);
  EXPECT_THROW((void)MonotoneFormula::atom({1}, -2), std::invalid_argument);
}

TEST(Predicate, ComposesDownstream) {
  // Predicates are output-oblivious modules: gate a payload on
  // [x1 >= 2] by multiplying the indicator by 3 downstream.
  const crn::Crn pred =
      compile_monotone_predicate(MonotoneFormula::atom({1, 0}, 2));
  const crn::Crn gated = crn::concatenate(pred, scale_crn(3), "3*[x1>=2]");
  const fn::DiscreteFunction expected(
      2, [](const fn::Point& x) -> Int { return x[0] >= 2 ? 3 : 0; },
      "3*[x1>=2]");
  const auto sweep =
      verify::check_stable_computation_on_grid(gated, expected, 3);
  EXPECT_TRUE(sweep.all_ok);
}

TEST(Predicate, MajorityStyleThreeWay) {
  // [x1 + x2 >= 2] AND ([x1 >= 1] OR [x3 >= 1]) over three inputs.
  const auto formula =
      MonotoneFormula::atom({1, 1, 0}, 2) &&
      (MonotoneFormula::atom({1, 0, 0}, 1) ||
       MonotoneFormula::atom({0, 0, 1}, 1));
  const crn::Crn crn = compile_monotone_predicate(formula);
  expect_computes(crn, formula, 2);
}

}  // namespace
}  // namespace crnkit::compile
