// Unit tests for the exact arithmetic substrate: rationals, number theory,
// congruence classes, and rational linear algebra.
#include <gtest/gtest.h>

#include "math/check.h"
#include "math/congruence.h"
#include "math/matrix.h"
#include "math/numtheory.h"
#include "math/rational.h"

namespace crnkit::math {
namespace {

TEST(NumTheory, GcdBasics) {
  EXPECT_EQ(gcd(12, 18), 6);
  EXPECT_EQ(gcd(-12, 18), 6);
  EXPECT_EQ(gcd(0, 5), 5);
  EXPECT_EQ(gcd(0, 0), 0);
  EXPECT_EQ(gcd(17, 13), 1);
}

TEST(NumTheory, LcmBasics) {
  EXPECT_EQ(lcm(4, 6), 12);
  EXPECT_EQ(lcm(std::vector<Int>{2, 3, 4}), 12);
  EXPECT_EQ(lcm(std::vector<Int>{}), 1);
}

TEST(NumTheory, LcmOverflowThrows) {
  EXPECT_THROW((void)lcm(INT64_MAX - 1, INT64_MAX - 2), OverflowError);
}

TEST(NumTheory, CheckedArithmeticOverflow) {
  EXPECT_THROW((void)checked_add(INT64_MAX, 1), OverflowError);
  EXPECT_THROW((void)checked_mul(INT64_MAX, 2), OverflowError);
  EXPECT_EQ(checked_add(2, 3), 5);
  EXPECT_EQ(checked_mul(-4, 5), -20);
}

TEST(NumTheory, FlooredDivisionConventions) {
  EXPECT_EQ(floor_div(7, 2), 3);
  EXPECT_EQ(floor_div(-7, 2), -4);
  EXPECT_EQ(floor_mod(-7, 2), 1);
  EXPECT_EQ(floor_mod(7, 2), 1);
  EXPECT_EQ(floor_mod(-3, 3), 0);
}

TEST(NumTheory, MixedRadixRoundTrip) {
  for (Int index = 0; index < 27; ++index) {
    const auto digits = decode_mixed_radix(index, 3, 3);
    EXPECT_EQ(encode_mixed_radix(digits, 3), index);
  }
}

TEST(Rational, NormalizationAndSign) {
  const Rational q(6, -4);
  EXPECT_EQ(q.num(), -3);
  EXPECT_EQ(q.den(), 2);
  EXPECT_TRUE(q.is_negative());
  EXPECT_EQ(Rational(0, 7), Rational(0));
}

TEST(Rational, ZeroDenominatorThrows) {
  EXPECT_THROW(Rational(1, 0), std::invalid_argument);
}

TEST(Rational, Arithmetic) {
  const Rational a(1, 2);
  const Rational b(1, 3);
  EXPECT_EQ(a + b, Rational(5, 6));
  EXPECT_EQ(a - b, Rational(1, 6));
  EXPECT_EQ(a * b, Rational(1, 6));
  EXPECT_EQ(a / b, Rational(3, 2));
  EXPECT_EQ(-a, Rational(-1, 2));
}

TEST(Rational, Comparisons) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LT(Rational(-1, 2), Rational(-1, 3));
  EXPECT_GE(Rational(2), Rational(4, 2));
}

TEST(Rational, FloorCeil) {
  EXPECT_EQ(Rational(7, 2).floor(), 3);
  EXPECT_EQ(Rational(7, 2).ceil(), 4);
  EXPECT_EQ(Rational(-7, 2).floor(), -4);
  EXPECT_EQ(Rational(-7, 2).ceil(), -3);
  EXPECT_EQ(Rational(4).floor(), 4);
  EXPECT_EQ(Rational(4).ceil(), 4);
}

TEST(Rational, AsIntegerThrowsOnFraction) {
  EXPECT_EQ(Rational(8, 2).as_integer(), 4);
  EXPECT_THROW((void)Rational(1, 2).as_integer(), std::invalid_argument);
}

TEST(Rational, VectorHelpers) {
  const RatVec a{Rational(1, 2), Rational(3)};
  const RatVec b{Rational(2), Rational(1, 3)};
  EXPECT_EQ(dot(a, b), Rational(2));
  EXPECT_EQ(common_denominator(a), 2);
  EXPECT_EQ(clear_denominators(a), (std::vector<Int>{1, 6}));
  EXPECT_TRUE(is_zero(RatVec{Rational(0), Rational(0)}));
  EXPECT_FALSE(is_zero(a));
}

TEST(Congruence, RepresentativeAndIndex) {
  const CongruenceClass a({5, 7}, 3);
  EXPECT_EQ(a.representative(), (std::vector<Int>{2, 1}));
  EXPECT_EQ(a.index(), 2 + 1 * 3);
  EXPECT_TRUE(a.contains({8, 10}));
  EXPECT_FALSE(a.contains({8, 11}));
}

TEST(Congruence, ShiftWrapsAround) {
  const CongruenceClass a({2, 0}, 3);
  EXPECT_EQ(a.shifted(0).representative(), (std::vector<Int>{0, 0}));
  EXPECT_EQ(a.shifted(1).representative(), (std::vector<Int>{2, 1}));
}

TEST(Congruence, AllClassesEnumerates) {
  const auto classes = all_classes(2, 3);
  ASSERT_EQ(classes.size(), 9u);
  for (Int i = 0; i < 9; ++i) {
    EXPECT_EQ(classes[static_cast<std::size_t>(i)].index(), i);
  }
}

TEST(Matrix, RankAndReduce) {
  Matrix m = Matrix::from_rows({{Rational(1), Rational(2)},
                                {Rational(2), Rational(4)},
                                {Rational(0), Rational(1)}});
  EXPECT_EQ(rank(m), 2u);
}

TEST(Matrix, NullspaceOfRankDeficient) {
  Matrix m = Matrix::from_rows({{Rational(1), Rational(1), Rational(0)}});
  const auto basis = nullspace(m);
  ASSERT_EQ(basis.size(), 2u);
  for (const auto& v : basis) {
    EXPECT_TRUE(dot(m.row(0), v).is_zero());
  }
}

TEST(Matrix, SolveConsistentSystem) {
  Matrix m = Matrix::from_rows({{Rational(2), Rational(1)},
                                {Rational(1), Rational(-1)}});
  const auto x = solve(m, {Rational(5), Rational(1)});
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ((*x)[0], Rational(2));
  EXPECT_EQ((*x)[1], Rational(1));
}

TEST(Matrix, SolveInconsistentReturnsNullopt) {
  Matrix m = Matrix::from_rows({{Rational(1), Rational(1)},
                                {Rational(2), Rational(2)}});
  EXPECT_FALSE(solve(m, {Rational(1), Rational(3)}).has_value());
}

TEST(Matrix, ProjectionOntoSpan) {
  // Project (1,1) onto span{(1,0)}: (1,0).
  const RatVec proj =
      project_onto_span({Rational(1), Rational(1)}, {{Rational(1),
                                                      Rational(0)}});
  EXPECT_EQ(proj[0], Rational(1));
  EXPECT_EQ(proj[1], Rational(0));
}

TEST(Matrix, OrthogonalComponentAndSpanMembership) {
  const std::vector<RatVec> basis{{Rational(1), Rational(1)}};
  EXPECT_TRUE(in_span({Rational(3), Rational(3)}, basis));
  EXPECT_FALSE(in_span({Rational(1), Rational(0)}, basis));
  const RatVec orth = orthogonal_component({Rational(1), Rational(0)}, basis);
  EXPECT_EQ(orth[0], Rational(1, 2));
  EXPECT_EQ(orth[1], Rational(-1, 2));
}

TEST(Matrix, MultiplyIdentity) {
  Matrix m = Matrix::from_rows({{Rational(1), Rational(2)},
                                {Rational(3), Rational(4)}});
  const Matrix prod = m.multiply(Matrix::identity(2));
  EXPECT_EQ(prod.at(0, 1), Rational(2));
  EXPECT_EQ(prod.at(1, 0), Rational(3));
}

}  // namespace
}  // namespace crnkit::math
