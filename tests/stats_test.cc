// Tests for the convergence-statistics layer: Welford accumulation against
// closed forms, seeded reproducibility, and sensible convergence summaries
// on known CRNs.
#include <gtest/gtest.h>

#include "compile/oned.h"
#include "compile/primitives.h"
#include "crn/bimolecular.h"
#include "fn/examples.h"
#include "sim/stats.h"

namespace crnkit::sim {
namespace {

using math::Int;

TEST(SampleStats, MatchesClosedForms) {
  SampleStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_GT(s.ci95_halfwidth(), 0.0);
}

TEST(SampleStats, DegenerateCases) {
  SampleStats s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(Convergence, MinCrnStepCountIsDeterministic) {
  // min fires exactly min(x1, x2) reactions in every run.
  const crn::Crn crn = compile::min_crn(2);
  const auto stats = measure_convergence(crn, {5, 9}, 10);
  EXPECT_EQ(stats.silent_trials, 10);
  EXPECT_TRUE(stats.output_consistent);
  EXPECT_EQ(stats.output, 5);
  EXPECT_DOUBLE_EQ(stats.steps.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stats.steps.variance(), 0.0);
}

TEST(Convergence, MaxCrnStepCountIsScheduleInvariant) {
  // Although the *order* of reactions varies wildly (transient overshoot),
  // each of max's four reactions fires a fixed number of times on a given
  // input — x1 + x2 + 2*min(x1,x2) total — so the step count has zero
  // variance across schedules.
  const crn::Crn crn = compile::fig1_max_crn();
  const auto stats = measure_convergence(crn, {6, 4}, 20);
  EXPECT_EQ(stats.silent_trials, 20);
  EXPECT_TRUE(stats.output_consistent);
  EXPECT_EQ(stats.output, 6);
  EXPECT_DOUBLE_EQ(stats.steps.mean(), 6 + 4 + 2 * 4);
  EXPECT_DOUBLE_EQ(stats.steps.variance(), 0.0);
}

TEST(Convergence, RacingCrnHasStepVariance) {
  // A genuinely schedule-dependent CRN: X -> Y vs X -> 2Y; 2Y -> Z halves
  // a varying amount of output, so step counts vary across seeds.
  crn::Crn crn("race");
  crn.set_input_species({"X"});
  crn.set_output_species("Z");
  crn.add_reaction_str("X -> Y");
  crn.add_reaction_str("X -> 2 Y");
  crn.add_reaction_str("2 Y -> Z");
  const auto stats = measure_convergence(crn, {9, }, 30);
  EXPECT_EQ(stats.silent_trials, 30);
  EXPECT_GT(stats.steps.variance(), 0.0);
}

TEST(Convergence, SeededReproducibility) {
  const crn::Crn crn = compile::fig1_max_crn();
  const auto a = measure_convergence(crn, {4, 7}, 8, 99);
  const auto b = measure_convergence(crn, {4, 7}, 8, 99);
  EXPECT_DOUBLE_EQ(a.steps.mean(), b.steps.mean());
  EXPECT_DOUBLE_EQ(a.steps.variance(), b.steps.variance());
}

TEST(Convergence, PopulationParallelTimeGrowsWithInput) {
  const crn::Crn bi = crn::to_bimolecular(
      compile::compile_oned(fn::examples::floor_3x_over_2()));
  const auto small = measure_population_convergence(bi, {8}, 5);
  const auto large = measure_population_convergence(bi, {64}, 5);
  EXPECT_EQ(small.silent_trials, 5);
  EXPECT_EQ(large.silent_trials, 5);
  EXPECT_GT(large.parallel_time.mean(), small.parallel_time.mean());
  EXPECT_GT(large.interactions.mean(), small.interactions.mean());
}

TEST(Convergence, BrokenCrnFlagsInconsistentOutput) {
  // X -> Y vs X -> 2Y race: different runs give different outputs.
  crn::Crn crn("race");
  crn.set_input_species({"X"});
  crn.set_output_species("Y");
  crn.add_reaction_str("X -> Y");
  crn.add_reaction_str("X -> 2 Y");
  const auto stats = measure_convergence(crn, {10}, 20);
  EXPECT_FALSE(stats.output_consistent);
}

}  // namespace
}  // namespace crnkit::sim
