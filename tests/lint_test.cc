// Tests for the static CRN analyzer (src/lint/): conservation-law
// extraction with exact integer certificates, structural diagnostics, the
// syntactic composability screen, and the invariant guide — plus the
// agreement sweeps the analyzer's soundness rests on: the screen must
// agree with crn::is_output_oblivious and Lemma 2.3's strip-and-recheck on
// every registry scenario, every extracted law must hold on every config
// of a completed exact exploration, and guided exploration must be
// bit-identical to unguided.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "compile/oned.h"
#include "compile/primitives.h"
#include "crn/checks.h"
#include "crn/invariants.h"
#include "fn/examples.h"
#include "lint/analyzer.h"
#include "lint/guide.h"
#include "math/matrix.h"
#include "scenario/registry.h"
#include "verify/composability.h"
#include "verify/reachability.h"

namespace crnkit::lint {
namespace {

using math::Int;
using math::Rational;
using math::RatVec;

bool has_code(const AnalysisReport& report, const std::string& code,
              Severity severity) {
  return std::any_of(report.diagnostics.begin(), report.diagnostics.end(),
                     [&](const Diagnostic& d) {
                       return d.code == code && d.severity == severity;
                     });
}

RatVec to_rational(const std::vector<Int>& w) {
  RatVec out;
  out.reserve(w.size());
  for (const Int x : w) out.emplace_back(x);
  return out;
}

// --- conservation-law extraction ---

TEST(Lint, IntegerNullspaceAgreesWithRationalNullspace) {
  // Same span: every integer basis vector is in the rational kernel, and
  // the basis sizes (nullspace dimensions) match.
  for (const crn::Crn& crn :
       {compile::min_crn(2), compile::min_crn(3), compile::fig1_max_crn(),
        compile::compile_oned(fn::examples::floor_3x_over_2())}) {
    const math::Matrix m = crn::stoichiometry_matrix(crn);
    const auto integer_basis = math::integer_nullspace(m);
    const auto rational_basis = math::nullspace(m);
    EXPECT_EQ(integer_basis.size(), rational_basis.size()) << crn.name();
    for (const auto& w : integer_basis) {
      for (std::size_t r = 0; r < m.rows(); ++r) {
        Rational dot(0);
        for (std::size_t c = 0; c < m.cols(); ++c) {
          dot += m.at(r, c) * Rational(w[c]);
        }
        EXPECT_EQ(dot, Rational(0)) << crn.name() << " row " << r;
      }
    }
  }
}

TEST(Lint, ExtractedLawsAreConservedAndPrimitive) {
  for (const crn::Crn& crn :
       {compile::min_crn(2), compile::min_crn(3), compile::fig1_max_crn(),
        compile::compile_oned(fn::examples::floor_3x_over_2())}) {
    const auto laws = extract_conservation_laws(crn);
    EXPECT_FALSE(laws.empty()) << crn.name();
    for (const ConservationLaw& law : laws) {
      EXPECT_TRUE(crn::is_conserved(crn, to_rational(law.weights)))
          << crn.name() << ": " << law.rendering;
      // Primitive: gcd 1, first nonzero entry positive.
      Int gcd = 0;
      Int first_nonzero = 0;
      for (const Int x : law.weights) {
        const Int mag = x < 0 ? -x : x;
        gcd = math::gcd(gcd, mag);
        if (first_nonzero == 0 && x != 0) first_nonzero = x;
      }
      EXPECT_EQ(gcd, 1) << law.rendering;
      EXPECT_GT(first_nonzero, 0) << law.rendering;
      // The semiflow flag is exactly "all weights non-negative".
      EXPECT_EQ(law.semiflow,
                std::all_of(law.weights.begin(), law.weights.end(),
                            [](const Int x) { return x >= 0; }))
          << law.rendering;
    }
  }
}

TEST(Lint, MinCrnLawsMatchKnownInvariants) {
  // min(x1, x2): X1 + X2 -> Y has a 2-dimensional law space (3 species,
  // rank-1 stoichiometry), and at least one basis law is a P-semiflow
  // (e.g. x1 + y): that semiflow is what bounds the exploration.
  const auto report = analyze(compile::min_crn(2));
  ASSERT_EQ(report.laws.size(), 2u);
  EXPECT_TRUE(std::any_of(report.laws.begin(), report.laws.end(),
                          [](const ConservationLaw& l) { return l.semiflow; }));
}

// --- structural diagnostics ---

TEST(Lint, DeadSpeciesIsReported) {
  crn::Crn crn("dead");
  crn.add_reaction_str("X -> Y");
  crn.add_species("D");  // no reaction, no role
  const auto report = analyze(crn);
  EXPECT_TRUE(has_code(report, "dead-species", Severity::kInfo));
}

TEST(Lint, WriteOnlyNonOutputSpeciesIsReported) {
  crn::Crn crn("write-only");
  crn.add_reaction_str("X -> Y + W");
  crn.set_input_species({"X"});
  crn.set_output_species("Y");
  const auto report = analyze(crn);
  // W accumulates and is not the output; Y is the output so it is exempt.
  bool flagged_w = false;
  bool flagged_y = false;
  for (const Diagnostic& d : report.diagnostics) {
    if (d.code != "write-only-species") continue;
    flagged_w |= d.species == "W";
    flagged_y |= d.species == "Y";
  }
  EXPECT_TRUE(flagged_w);
  EXPECT_FALSE(flagged_y);
}

TEST(Lint, DuplicateAndShadowedReactionsAreReported) {
  crn::Crn crn("dup");
  crn.add_reaction_str("A + B -> C");
  crn.add_reaction_str("A + B -> C");  // exact duplicate
  crn.add_reaction_str("A + B -> 2 C");  // same reactants, races with both
  const auto report = analyze(crn);
  EXPECT_TRUE(has_code(report, "duplicate-reaction", Severity::kWarn));
  EXPECT_TRUE(has_code(report, "shadowed-reaction", Severity::kInfo));
}

TEST(Lint, UnfirableReactionIsReported) {
  // Z is never producible from the initial pattern {X counts, no leader},
  // so Z -> Y can provably never fire.
  crn::Crn crn("unfirable");
  crn.add_reaction_str("X -> Y");
  crn.add_reaction_str("Z -> Y");
  crn.set_input_species({"X"});
  crn.set_output_species("Y");
  const auto report = analyze(crn);
  EXPECT_TRUE(has_code(report, "unfirable-reaction", Severity::kWarn));
}

TEST(Lint, OutputNeverProducedIsAnError) {
  crn::Crn crn("no-output");
  crn.add_reaction_str("X -> W");
  crn.set_input_species({"X"});
  crn.set_output_species("Y");  // creates Y; nothing ever produces it
  const auto report = analyze(crn);
  EXPECT_TRUE(has_code(report, "output-never-produced", Severity::kError));
  EXPECT_TRUE(report.has_errors());
}

TEST(Lint, CleanObliviousModuleHasNoFindings) {
  const auto report = analyze(compile::min_crn(2));
  EXPECT_FALSE(report.has_errors());
  EXPECT_TRUE(report.screen.output_declared);
  EXPECT_TRUE(report.screen.oblivious);
  EXPECT_FALSE(has_code(report, "consumes-output", Severity::kWarn));
}

// --- composability screen vs the exact Lemma 2.3 machinery ---

TEST(Lint, MaxCrnIsRejectedWithTheOffendingReactionNamed) {
  const auto report = analyze(compile::fig1_max_crn());
  EXPECT_TRUE(report.screen.output_declared);
  EXPECT_FALSE(report.screen.oblivious);
  ASSERT_GE(report.screen.offending_reaction, 0);
  // The offending reaction consumes the output species Y.
  EXPECT_NE(report.screen.offending_rendering.find("Y"), std::string::npos)
      << report.screen.offending_rendering;
  EXPECT_TRUE(has_code(report, "consumes-output", Severity::kWarn));
}

TEST(Lint, ScreenAgreesWithIsOutputObliviousOnEveryRegistryScenario) {
  const auto scenarios = scenario::Registry::builtin().build_all();
  ASSERT_FALSE(scenarios.empty());
  for (const scenario::Scenario& s : scenarios) {
    const auto report = analyze(s.crn);
    EXPECT_EQ(report.screen.output_declared, s.crn.output().has_value())
        << s.name;
    if (!s.crn.output().has_value()) continue;
    EXPECT_EQ(report.screen.oblivious, crn::is_output_oblivious(s.crn))
        << s.name;
    if (!report.screen.oblivious) {
      // The anchor must be real: that reaction consumes the output.
      ASSERT_GE(report.screen.offending_reaction, 0) << s.name;
      const auto& r = s.crn.reactions()[static_cast<std::size_t>(
          report.screen.offending_reaction)];
      EXPECT_GT(r.reactant_count(s.crn.output_or_throw()), 0) << s.name;
    }
  }
}

TEST(Lint, ScreenAgreesWithStripAndRecheckOnThePaperExamples) {
  // Obs. 2.2 half: a screen-clean module needs no stripping at all.
  const auto min_report = verify::check_composability(
      compile::min_crn(2), fn::examples::min2(), 4);
  EXPECT_TRUE(analyze(compile::min_crn(2)).screen.oblivious);
  EXPECT_TRUE(min_report.already_oblivious);
  EXPECT_TRUE(min_report.composable());
  // Lemma 2.3 half: the screen's rejection is confirmed by the exact
  // strip-and-recheck — stripped max computes x1 + x2, not max.
  const auto max_report = verify::check_composability(
      compile::fig1_max_crn(), fn::examples::max2(), 4);
  EXPECT_FALSE(analyze(compile::fig1_max_crn()).screen.oblivious);
  EXPECT_FALSE(max_report.already_oblivious);
  EXPECT_FALSE(max_report.composable());
}

// --- the invariant guide and exact exploration ---

TEST(Lint, LawsHoldOnEveryConfigOfACompletedExploration) {
  const crn::Crn max2 = compile::fig1_max_crn();
  const auto laws = extract_conservation_laws(max2);
  ASSERT_FALSE(laws.empty());
  const crn::Config initial = max2.initial_configuration({3, 2});
  const auto graph = verify::explore(max2, initial);
  ASSERT_TRUE(graph.complete);
  for (const ConservationLaw& law : laws) {
    const RatVec w = to_rational(law.weights);
    const Rational at_root = crn::invariant_value(w, initial);
    for (std::size_t node = 0; node < graph.size(); ++node) {
      ASSERT_EQ(crn::invariant_value(
                    w, graph.config(static_cast<int>(node))),
                at_root)
          << law.rendering << " violated at node " << node;
    }
  }
}

TEST(Lint, GuideBoundsAreRespectedByEveryReachableConfig) {
  const crn::Crn min3 = compile::min_crn(3);
  const crn::Config initial = min3.initial_configuration({4, 2, 3});
  const InvariantGuide guide = make_guide(min3, initial);
  ASSERT_FALSE(guide.empty());
  const auto graph = verify::explore(min3, initial);
  ASSERT_TRUE(graph.complete);
  for (std::size_t node = 0; node < graph.size(); ++node) {
    const crn::Config c = graph.config(static_cast<int>(node));
    for (std::size_t s = 0; s < c.size(); ++s) {
      if (guide.bounds[s] < 0) continue;  // uncovered species
      ASSERT_LE(c[s], guide.bounds[s]) << "species " << s << " at " << node;
    }
  }
}

TEST(Lint, FullySemiflowCoveredCrnGetsAReachableBound) {
  // scale_crn(2) is X -> 2Y with the single semiflow 2x + y, covering both
  // species: the guide bounds x <= n, y <= 2n and the whole reachable set
  // by (n + 1)(2n + 1).
  const crn::Crn twice = compile::scale_crn(2);
  const crn::Config initial = twice.initial_configuration({6});
  const InvariantGuide guide = make_guide(twice, initial);
  ASSERT_FALSE(guide.empty());
  for (const math::Int b : guide.bounds) EXPECT_GE(b, 0);
  ASSERT_GE(guide.reachable_bound, 0);
  const auto graph = verify::explore(twice, initial);
  ASSERT_TRUE(graph.complete);
  EXPECT_LE(static_cast<math::Int>(graph.size()), guide.reachable_bound);
}

TEST(Lint, GuidedExplorationIsBitIdenticalToUnguided) {
  for (const fn::Point& x :
       {fn::Point{5, 3}, fn::Point{2, 7}, fn::Point{4, 4}}) {
    const crn::Crn max2 = compile::fig1_max_crn();
    const crn::Config initial = max2.initial_configuration(x);
    const auto plain = verify::explore(max2, initial);
    const InvariantGuide guide = make_guide(max2, initial);
    verify::ExploreOptions guided_options;
    guided_options.species_bounds = &guide.bounds;
    guided_options.expected_configs = guide.reachable_bound;
    const auto guided = verify::explore(max2, initial, guided_options);
    ASSERT_EQ(plain.size(), guided.size());
    ASSERT_EQ(plain.edge_count(), guided.edge_count());
    // Not just counts: the enumerated configuration sets are identical.
    std::set<crn::Config> plain_configs;
    std::set<crn::Config> guided_configs;
    for (std::size_t n = 0; n < plain.size(); ++n) {
      plain_configs.insert(plain.config(static_cast<int>(n)));
      guided_configs.insert(guided.config(static_cast<int>(n)));
    }
    EXPECT_EQ(plain_configs, guided_configs);
  }
}

TEST(Lint, CertificatesRenderTheInvariantValueAtThePoint) {
  const crn::Crn min2 = compile::min_crn(2);
  const crn::Config initial = min2.initial_configuration({3, 2});
  const InvariantGuide guide = make_guide(min2, initial);
  const auto certs = certificates(guide, initial);
  ASSERT_EQ(certs.size(), guide.laws.size());
  for (std::size_t i = 0; i < certs.size(); ++i) {
    // Each certificate is "<law rendering> = <w . I_x>", with the value
    // computed exactly from the law's own integer weights.
    math::Int value = 0;
    for (std::size_t s = 0; s < initial.size(); ++s) {
      value += guide.laws[i].weights[s] * initial[s];
    }
    EXPECT_EQ(certs[i], guide.laws[i].rendering + " = " +
                            std::to_string(value))
        << certs[i];
  }
}

TEST(Lint, RegistrySweepHasNoErrorsInVerifiableScenarios) {
  // The gate `crnc analyze --all` enforces, at the library level: no
  // scenario that verification is expected to prove carries an
  // error-severity static finding.
  for (const scenario::Scenario& s :
       scenario::Registry::builtin().build_all()) {
    if (s.unverifiable()) continue;
    const auto report = analyze(s.crn);
    EXPECT_FALSE(report.has_errors()) << s.name << "\n" << render_text(report);
  }
}

}  // namespace
}  // namespace crnkit::lint
