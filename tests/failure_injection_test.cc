// Failure injection: mutate correct constructions and confirm the
// verifiers catch every corruption. A verifier that cannot reject broken
// CRNs proves nothing with its green runs.
#include <gtest/gtest.h>

#include "compile/oned.h"
#include "compile/primitives.h"
#include "compile/quilt.h"
#include "fn/examples.h"
#include "verify/simcheck.h"
#include "verify/stable.h"

namespace crnkit {
namespace {

using math::Int;

/// Rebuilds `crn` without reaction `drop`.
crn::Crn without_reaction(const crn::Crn& crn, std::size_t drop) {
  crn::Crn out(crn.name() + "-rxn" + std::to_string(drop));
  for (const std::string& s : crn.species_table().names()) out.add_species(s);
  for (std::size_t j = 0; j < crn.reactions().size(); ++j) {
    if (j != drop) out.add_reaction(crn.reactions()[j]);
  }
  std::vector<std::string> inputs;
  for (const crn::SpeciesId id : crn.inputs()) {
    inputs.push_back(crn.species_name(id));
  }
  out.set_input_species(inputs);
  out.set_output_species(crn.species_name(crn.output_or_throw()));
  if (crn.leader()) out.set_leader_species(crn.species_name(*crn.leader()));
  return out;
}

/// Rebuilds `crn` with one extra Y in the products of reaction `bump`.
crn::Crn with_extra_output(const crn::Crn& crn, std::size_t bump) {
  crn::Crn out(crn.name() + "+extraY");
  for (const std::string& s : crn.species_table().names()) out.add_species(s);
  const crn::SpeciesId y = crn.output_or_throw();
  for (std::size_t j = 0; j < crn.reactions().size(); ++j) {
    if (j != bump) {
      out.add_reaction(crn.reactions()[j]);
      continue;
    }
    std::vector<crn::Term> reactants(crn.reactions()[j].reactants());
    std::vector<crn::Term> products(crn.reactions()[j].products());
    products.push_back({y, 1});
    out.add_reaction(crn::Reaction(std::move(reactants),
                                   std::move(products)));
  }
  std::vector<std::string> inputs;
  for (const crn::SpeciesId id : crn.inputs()) {
    inputs.push_back(crn.species_name(id));
  }
  out.set_input_species(inputs);
  out.set_output_species(crn.species_name(y));
  if (crn.leader()) out.set_leader_species(crn.species_name(*crn.leader()));
  return out;
}

TEST(FailureInjection, DroppedReactionIsCaughtExhaustively) {
  // Theorem 3.1 CRN for floor(3x/2) minus any single reaction fails on
  // some input <= 8 (every reaction of the chain is load-bearing).
  const crn::Crn good = compile::compile_oned(fn::examples::floor_3x_over_2());
  const auto f = fn::examples::floor_3x_over_2();
  for (std::size_t j = 0; j < good.reactions().size(); ++j) {
    const crn::Crn broken = without_reaction(good, j);
    bool caught = false;
    for (Int x = 0; x <= 8 && !caught; ++x) {
      caught = !verify::check_stable_computation(broken, {x}, f(x)).ok;
    }
    EXPECT_TRUE(caught) << "dropping reaction " << j << " went unnoticed";
  }
}

TEST(FailureInjection, ExtraOutputIsCaughtAsOverproduction) {
  const crn::Crn good = compile::compile_oned(fn::examples::floor_3x_over_2());
  const auto f = fn::examples::floor_3x_over_2();
  for (std::size_t j = 0; j < good.reactions().size(); ++j) {
    const crn::Crn broken = with_extra_output(good, j);
    bool caught = false;
    bool overproduced = false;
    for (Int x = 0; x <= 8 && !caught; ++x) {
      const auto result =
          verify::check_stable_computation(broken, {x}, f(x));
      caught = !result.ok;
      overproduced = result.overproduction.has_value();
    }
    EXPECT_TRUE(caught) << "extra output on reaction " << j;
    EXPECT_TRUE(overproduced) << "overproduction not reported on " << j;
  }
}

TEST(FailureInjection, QuiltCrnCorruptedDeltaCaught) {
  // Lemma 6.1 CRN for fig3a with one extra Y injected into a periodic
  // transition: caught on small inputs.
  const crn::Crn good = compile::compile_quilt_affine(
      fn::examples::fig3a_quilt());
  for (std::size_t j = 0; j < good.reactions().size(); ++j) {
    const crn::Crn broken = with_extra_output(good, j);
    bool caught = false;
    for (Int x = 0; x <= 6 && !caught; ++x) {
      caught = !verify::check_stable_computation(broken, {x}, (3 * x) / 2).ok;
    }
    EXPECT_TRUE(caught) << "reaction " << j;
  }
}

TEST(FailureInjection, RandomizedCheckerCatchesCorruptions) {
  // The stochastic checker must agree with the exhaustive one on broken
  // CRNs (silent runs land on wrong outputs).
  const crn::Crn good = compile::compile_oned(fn::examples::floor_3x_over_2());
  const crn::Crn broken = with_extra_output(good, 1);
  verify::SimCheckOptions options;
  options.trials_per_point = 8;
  const auto result = verify::sim_check_grid(
      broken, fn::examples::floor_3x_over_2(), 6, options);
  EXPECT_FALSE(result.ok);
  EXPECT_GT(result.mismatches, 0);
}

TEST(FailureInjection, MissingLeaderNeverConverges) {
  // Deleting the leader's seed reaction stalls the whole chain: the CRN
  // silently outputs 0 everywhere (wrong except at f(x) = 0).
  const crn::Crn good = compile::compile_oned(fn::examples::floor_3x_over_2());
  const crn::Crn broken = without_reaction(good, 0);  // L -> ... seed
  const auto result = verify::check_stable_computation(broken, {4}, 6);
  EXPECT_FALSE(result.ok);
}

TEST(FailureInjection, WrongExpectedValueIsRejectedNotAccepted) {
  // Sanity of the harness itself: a correct CRN checked against the wrong
  // value must fail, not pass.
  const crn::Crn good = compile::min_crn(2);
  EXPECT_FALSE(verify::check_stable_computation(good, {2, 5}, 3).ok);
  EXPECT_TRUE(verify::check_stable_computation(good, {2, 5}, 2).ok);
}

TEST(FailureInjection, IndicatorWithWrongThresholdCaught) {
  // indicator_crn(j) checked against the (j+1)-threshold function fails.
  const crn::Crn ind = compile::indicator_crn(1);
  // c(a,b,x) with j = 1: a + [x > 1] b. Against j = 2 semantics:
  const fn::DiscreteFunction wrong(
      3,
      [](const fn::Point& x) { return x[0] + (x[2] > 2 ? x[1] : 0); },
      "wrong-threshold");
  bool caught = false;
  for (Int c = 0; c <= 4 && !caught; ++c) {
    caught = !verify::check_stable_computation(ind, {1, 1, c}, wrong({1, 1, c}))
                  .ok;
  }
  EXPECT_TRUE(caught);
}

}  // namespace
}  // namespace crnkit
