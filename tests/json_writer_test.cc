// Tests for the shared JSON emission helper: escaping (including the
// control characters and quote/backslash cases the old bench escaper
// mishandled), comma placement, and nesting.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/json_parse.h"
#include "util/json_writer.h"

namespace crnkit::util {
namespace {

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(json_escape("fig1/min"), "fig1/min");
}

TEST(JsonEscape, EscapesQuotesAndBackslashes) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("\\\""), "\\\\\\\"");
}

TEST(JsonEscape, EscapesControlCharacters) {
  EXPECT_EQ(json_escape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
  EXPECT_EQ(json_escape(std::string(1, '\x1f')), "\\u001f");
}

TEST(JsonWriter, FlatObject) {
  JsonWriter w;
  w.begin_object().kv("a", 1).kv("b", "two").kv("c", true).end_object();
  EXPECT_EQ(w.str(), "{\"a\": 1, \"b\": \"two\", \"c\": true}");
}

TEST(JsonWriter, NestedArraysAndObjects) {
  JsonWriter w;
  w.begin_object().key("xs").begin_array();
  w.value(1).value(2);
  w.begin_object().kv("deep", false).end_object();
  w.end_array().kv("n", std::size_t{3}).end_object();
  EXPECT_EQ(w.str(), "{\"xs\": [1, 2, {\"deep\": false}], \"n\": 3}");
}

TEST(JsonWriter, EmptyContainers) {
  JsonWriter w;
  w.begin_object().key("a").begin_array().end_array().key("o")
      .begin_object().end_object().end_object();
  EXPECT_EQ(w.str(), "{\"a\": [], \"o\": {}}");
}

TEST(JsonWriter, FixedPrecisionDoubles) {
  JsonWriter w;
  w.begin_object().kv_fixed("x", 1.0 / 3.0, 3).end_object();
  EXPECT_EQ(w.str(), "{\"x\": 0.333}");
}

TEST(JsonWriter, NonFiniteDoublesEmitNull) {
  // JSON has no NaN/Infinity tokens: a zero-event bench record or a
  // zero-silent-trial rate must serialize as null, not "nan"/"inf".
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  JsonWriter w;
  w.begin_object()
      .kv("nan", nan)
      .kv("inf", inf)
      .kv("neg_inf", -inf)
      .kv_fixed("fixed_nan", nan, 3)
      .kv("fine", 1.5)
      .end_object();
  EXPECT_EQ(w.str(),
            "{\"nan\": null, \"inf\": null, "
            "\"neg_inf\": null, \"fixed_nan\": null, \"fine\": 1.5}");
  EXPECT_TRUE(JsonSyntaxChecker(w.str()).valid());
}

TEST(JsonWriter, NonFiniteInsideArrayKeepsCommaDiscipline) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  JsonWriter w;
  w.begin_array().value(1.0).value(nan).value(2.0).end_array();
  EXPECT_EQ(w.str(), "[1, null, 2]");
  EXPECT_TRUE(JsonSyntaxChecker(w.str()).valid());
}

TEST(JsonWriter, KeysAreEscaped) {
  JsonWriter w;
  w.begin_object().kv("a\"b", 1).end_object();
  EXPECT_EQ(w.str(), "{\"a\\\"b\": 1}");
}

TEST(JsonWriter, RawMemberKeepsCommaDiscipline) {
  JsonWriter w;
  w.begin_object().kv("a", 1).raw_member("\"speedup\": 2.50").kv("b", 2)
      .end_object();
  EXPECT_EQ(w.str(), "{\"a\": 1, \"speedup\": 2.50, \"b\": 2}");
}

}  // namespace
}  // namespace crnkit::util
