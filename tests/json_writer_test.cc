// Tests for the shared JSON emission helper: escaping (including the
// control characters and quote/backslash cases the old bench escaper
// mishandled), comma placement, and nesting.
#include <gtest/gtest.h>

#include "util/json_writer.h"

namespace crnkit::util {
namespace {

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(json_escape("fig1/min"), "fig1/min");
}

TEST(JsonEscape, EscapesQuotesAndBackslashes) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("\\\""), "\\\\\\\"");
}

TEST(JsonEscape, EscapesControlCharacters) {
  EXPECT_EQ(json_escape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
  EXPECT_EQ(json_escape(std::string(1, '\x1f')), "\\u001f");
}

TEST(JsonWriter, FlatObject) {
  JsonWriter w;
  w.begin_object().kv("a", 1).kv("b", "two").kv("c", true).end_object();
  EXPECT_EQ(w.str(), "{\"a\": 1, \"b\": \"two\", \"c\": true}");
}

TEST(JsonWriter, NestedArraysAndObjects) {
  JsonWriter w;
  w.begin_object().key("xs").begin_array();
  w.value(1).value(2);
  w.begin_object().kv("deep", false).end_object();
  w.end_array().kv("n", std::size_t{3}).end_object();
  EXPECT_EQ(w.str(), "{\"xs\": [1, 2, {\"deep\": false}], \"n\": 3}");
}

TEST(JsonWriter, EmptyContainers) {
  JsonWriter w;
  w.begin_object().key("a").begin_array().end_array().key("o")
      .begin_object().end_object().end_object();
  EXPECT_EQ(w.str(), "{\"a\": [], \"o\": {}}");
}

TEST(JsonWriter, FixedPrecisionDoubles) {
  JsonWriter w;
  w.begin_object().kv_fixed("x", 1.0 / 3.0, 3).end_object();
  EXPECT_EQ(w.str(), "{\"x\": 0.333}");
}

TEST(JsonWriter, KeysAreEscaped) {
  JsonWriter w;
  w.begin_object().kv("a\"b", 1).end_object();
  EXPECT_EQ(w.str(), "{\"a\\\"b\": 1}");
}

TEST(JsonWriter, RawMemberKeepsCommaDiscipline) {
  JsonWriter w;
  w.begin_object().kv("a", 1).raw_member("\"speedup\": 2.50").kv("b", 2)
      .end_object();
  EXPECT_EQ(w.str(), "{\"a\": 1, \"speedup\": 2.50, \"b\": 2}");
}

}  // namespace
}  // namespace crnkit::util
