// Tests for the polyhedral geometry of Section 7: Fourier-Motzkin
// feasibility, regions, recession cones, determined/under-determined
// classification, neighbors, and strips — including exact regeneration of
// the Figure 8 arrangements.
#include <gtest/gtest.h>

#include "fn/examples.h"
#include "geom/arrangement.h"
#include "geom/fourier_motzkin.h"
#include "geom/region.h"
#include "geom/strips.h"

namespace crnkit::geom {
namespace {

using math::Int;
using math::Rational;
using math::RatVec;

RatVec rv(std::initializer_list<Rational> values) { return RatVec(values); }

TEST(FourierMotzkin, SimpleFeasible) {
  // x >= 1, x <= 3.
  const auto sol = find_solution(
      {ge(rv({Rational(1)}), Rational(1)), ge(rv({Rational(-1)}),
                                              Rational(-3))},
      1);
  ASSERT_TRUE(sol.has_value());
  EXPECT_GE((*sol)[0], Rational(1));
  EXPECT_LE((*sol)[0], Rational(3));
}

TEST(FourierMotzkin, SimpleInfeasible) {
  // x >= 3, x <= 1.
  EXPECT_FALSE(feasible({ge(rv({Rational(1)}), Rational(3)),
                         ge(rv({Rational(-1)}), Rational(-1))},
                        1));
}

TEST(FourierMotzkin, StrictMakesInfeasible) {
  // x >= 1 and x <= 1 is feasible; x > 1 and x <= 1 is not.
  EXPECT_TRUE(feasible({ge(rv({Rational(1)}), Rational(1)),
                        ge(rv({Rational(-1)}), Rational(-1))},
                       1));
  EXPECT_FALSE(feasible({gt(rv({Rational(1)}), Rational(1)),
                         ge(rv({Rational(-1)}), Rational(-1))},
                        1));
}

TEST(FourierMotzkin, EqualityConstraints) {
  // x + y == 2, x - y == 0 -> x = y = 1.
  const auto sol = find_solution(
      {eq(rv({Rational(1), Rational(1)}), Rational(2)),
       eq(rv({Rational(1), Rational(-1)}), Rational(0))},
      2);
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ((*sol)[0], Rational(1));
  EXPECT_EQ((*sol)[1], Rational(1));
}

TEST(FourierMotzkin, WitnessSatisfiesAllConstraints) {
  // 2D cone: y1 >= 0, y2 >= 0, y1 - y2 > 0, y1 + y2 > 0.
  const std::vector<LinearConstraint> cs{
      ge(rv({Rational(1), Rational(0)}), Rational(0)),
      ge(rv({Rational(0), Rational(1)}), Rational(0)),
      gt(rv({Rational(1), Rational(-1)}), Rational(0)),
      gt(rv({Rational(1), Rational(1)}), Rational(0))};
  const auto sol = find_solution(cs, 2);
  ASSERT_TRUE(sol.has_value());
  for (const auto& c : cs) {
    EXPECT_TRUE(satisfies(c, *sol)) << c.to_string();
  }
}

TEST(FourierMotzkin, UnconstrainedDimensionGetsValue) {
  const auto sol = find_solution({}, 3);
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ(sol->size(), 3u);
}

TEST(ThresholdHyperplane, SignNeverZeroOnIntegers) {
  const ThresholdHyperplane hp{{1, -1}, 1};  // x1 - x2 >= 1
  EXPECT_EQ(hp.sign_of({3, 1}), +1);
  EXPECT_EQ(hp.sign_of({1, 1}), -1);
  EXPECT_EQ(hp.sign_of({2, 1}), +1);  // boundary value t.x == h counts as in
  EXPECT_EQ(hp.boundary_rhs(), Rational(1, 2));
}

TEST(Arrangement, RegionOfPartitionsGrid) {
  const Arrangement arr = fn::examples::fig8a_arrangement();
  // Every grid point belongs to exactly the region reported for it.
  for_each_grid_point(2, 8, [&](const std::vector<Int>& x) {
    const Region r = arr.region_of(x);
    EXPECT_TRUE(r.contains(x));
  });
}

TEST(Fig8a, ExactlyFiveRegionsRealized) {
  const Arrangement arr = fn::examples::fig8a_arrangement();
  const auto regions = arr.enumerate_regions(14);
  EXPECT_EQ(regions.size(), 5u);
}

TEST(Fig8a, Classification) {
  const Arrangement arr = fn::examples::fig8a_arrangement();
  int determined = 0;
  int under_eventual = 0;
  int finite = 0;
  for (const auto& realized : arr.enumerate_regions(14)) {
    const Region& r = realized.region;
    if (r.is_determined()) {
      ++determined;
      EXPECT_TRUE(r.is_eventual());
    } else if (r.is_eventual()) {
      ++under_eventual;
      EXPECT_EQ(r.cone_dimension(), 1);
    } else {
      ++finite;
      EXPECT_EQ(r.cone_dimension(), 0);
    }
  }
  EXPECT_EQ(determined, 2);      // regions "3" and "5" of Fig 8a
  EXPECT_EQ(under_eventual, 1);  // the strip region "4"
  EXPECT_EQ(finite, 2);          // regions "1" and "2"
}

TEST(Fig8a, StripRegionHasDeterminedNeighbors) {
  const Arrangement arr = fn::examples::fig8a_arrangement();
  for (const auto& realized : arr.enumerate_regions(14)) {
    const Region& r = realized.region;
    if (r.is_determined() || !r.is_eventual()) continue;
    int determined_neighbors = 0;
    for (const auto& other : arr.enumerate_regions(14)) {
      if (other.region.is_determined() && cone_subset(r, other.region)) {
        ++determined_neighbors;
      }
    }
    EXPECT_GE(determined_neighbors, 2);  // Corollary 7.19
  }
}

TEST(Fig8c, NineEventualRegionsWithExpectedConeDims) {
  const Arrangement arr = fn::examples::fig8c_arrangement();
  const auto regions = arr.enumerate_regions(10);
  int dim1 = 0;
  int dim2 = 0;
  int dim3 = 0;
  int eventual = 0;
  for (const auto& realized : regions) {
    const Region& r = realized.region;
    if (r.is_eventual()) ++eventual;
    switch (r.cone_dimension()) {
      case 1:
        ++dim1;
        break;
      case 2:
        ++dim2;
        break;
      case 3:
        ++dim3;
        break;
      default:
        ADD_FAILURE() << "unexpected cone dimension for " << r.to_string();
    }
  }
  EXPECT_EQ(regions.size(), 9u);
  EXPECT_EQ(eventual, 9);
  EXPECT_EQ(dim1, 1);  // center (region "5" of Fig 8c)
  EXPECT_EQ(dim2, 4);  // sides
  EXPECT_EQ(dim3, 4);  // determined corners
}

TEST(Fig8c, NestedNeighborChain) {
  // recc(center) subset recc(side) subset recc(corner), as in Fig 8d.
  const Arrangement arr = fn::examples::fig8c_arrangement();
  const Region center = arr.region_of({5, 5, 5});
  const Region side = arr.region_of({9, 5, 5});    // x1 - x2 >= 2 side
  const Region corner = arr.region_of({9, 5, 1});  // both pairs split
  EXPECT_EQ(center.cone_dimension(), 1);
  EXPECT_EQ(side.cone_dimension(), 2);
  EXPECT_EQ(corner.cone_dimension(), 3);
  EXPECT_TRUE(cone_subset(center, side));
  EXPECT_TRUE(cone_subset(side, corner));
  EXPECT_TRUE(cone_subset(center, corner));
  EXPECT_FALSE(cone_subset(side, center));
  EXPECT_FALSE(cone_subset(corner, side));
}

TEST(Region, PositiveRecessionDirectionOfDiagonalStrip) {
  const Arrangement arr = fn::examples::fig7_arrangement();
  const Region diag = arr.region_of({3, 3});
  const auto dir = diag.positive_recession_direction();
  ASSERT_TRUE(dir.has_value());
  EXPECT_EQ((*dir)[0], (*dir)[1]);  // must be along the diagonal
  EXPECT_GT((*dir)[0], 0);
}

TEST(Region, DeterminedSubspaceOfDiagonalStrip) {
  const Arrangement arr = fn::examples::fig7_arrangement();
  const Region diag = arr.region_of({3, 3});
  const auto basis = diag.determined_subspace_basis();
  ASSERT_EQ(basis.size(), 1u);
  EXPECT_EQ(basis[0][0], basis[0][1]);  // span{(1,1)}
}

TEST(Region, InteriorDirectionOnlyForDetermined) {
  const Arrangement arr = fn::examples::fig7_arrangement();
  EXPECT_TRUE(arr.region_of({5, 1}).interior_direction().has_value());
  EXPECT_FALSE(arr.region_of({3, 3}).interior_direction().has_value());
  EXPECT_TRUE(
      arr.region_of({3, 3}).relative_interior_direction().has_value());
}

TEST(Region, DeepPointRespectsMargin) {
  const Arrangement arr = fn::examples::fig7_arrangement();
  const Region upper = arr.region_of({1, 5});  // x2 > x1
  const auto dir = upper.interior_direction();
  ASSERT_TRUE(dir.has_value());
  const auto deep = upper.deep_point({1, 5}, *dir, 4);
  // Any integer point within L-inf distance 4 must stay in the region.
  for (Int dx = -4; dx <= 4; ++dx) {
    for (Int dy = -4; dy <= 4; ++dy) {
      EXPECT_TRUE(upper.contains({deep[0] + dx, deep[1] + dy}));
    }
  }
}

TEST(Region, RepresentativeInClassIsInRegionAndClass) {
  const Arrangement arr = fn::examples::fig7_arrangement();
  const Region upper = arr.region_of({1, 5});
  for (const auto& cls : math::all_classes(2, 3)) {
    const auto rep = upper.representative_in_class(cls, {1, 5});
    EXPECT_TRUE(upper.contains(rep));
    EXPECT_TRUE(cls.contains(rep));
  }
}

TEST(Region, NeighborInDirection) {
  const Arrangement arr = fn::examples::fig7_arrangement();
  const Region diag = arr.region_of({3, 3});
  // Direction (1,-1) in W-perp points toward the x1 > x2 region.
  const Region nb = neighbor_in_direction(
      diag, rv({Rational(1), Rational(-1)}));
  EXPECT_TRUE(nb.contains({5, 1}));
  EXPECT_TRUE(nb.is_determined());
  // Opposite direction gives the x2 > x1 region.
  const Region nb2 = neighbor_in_direction(
      diag, rv({Rational(-1), Rational(1)}));
  EXPECT_TRUE(nb2.contains({1, 5}));
}

TEST(Region, NeighborSeparatingIndices) {
  const Arrangement arr = fn::examples::fig7_arrangement();
  const Region diag = arr.region_of({3, 3});
  // Both hyperplanes of fig7 are orthogonal to W = span{(1,1)}.
  EXPECT_EQ(neighbor_separating_indices(diag).size(), 2u);
}

TEST(Strips, DiagonalRegionIsOneStrip) {
  const Arrangement arr = fn::examples::fig7_arrangement();
  const Region diag = arr.region_of({3, 3});
  const auto strips = decompose_strips(diag, 8);
  ASSERT_EQ(strips.size(), 1u);
  EXPECT_EQ(strips[0].points.size(), 9u);  // (0,0)..(8,8)
}

TEST(Strips, Fig8aStripRegionSplitsIntoParallelStrips) {
  const Arrangement arr = fn::examples::fig8a_arrangement();
  // Region between the parallel hyperplanes: 1 <= x1 - x2 <= 3 (eventual).
  const Region strip_region = arr.region_of({7, 5});
  ASSERT_FALSE(strip_region.is_determined());
  ASSERT_TRUE(strip_region.is_eventual());
  const auto strips = decompose_strips(strip_region, 12);
  // x1 - x2 takes values 1, 2, 3: three strips.
  EXPECT_EQ(strips.size(), 3u);
}

TEST(Strips, SameStripRelation) {
  const Arrangement arr = fn::examples::fig8a_arrangement();
  const Region strip_region = arr.region_of({7, 5});
  EXPECT_TRUE(same_strip(strip_region, {7, 5}, {9, 7}));   // both diff 2
  EXPECT_FALSE(same_strip(strip_region, {7, 5}, {8, 5}));  // diff 2 vs 3
}

TEST(BoxIteration, VisitsAllPoints) {
  int count = 0;
  for_each_box_point({1, 1}, {3, 2}, [&](const std::vector<Int>&) {
    ++count;
  });
  EXPECT_EQ(count, 3 * 2);
  // Empty box visits nothing.
  count = 0;
  for_each_box_point({2, 2}, {1, 5}, [&](const std::vector<Int>&) {
    ++count;
  });
  EXPECT_EQ(count, 0);
}

}  // namespace
}  // namespace crnkit::geom
