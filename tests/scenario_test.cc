// Tests for the scenario registry: catalog size and metadata invariants,
// the text-format round-trip property over every registered CRN, and exact
// stable-computation verification of every scenario's verify points (the
// catalog's correctness contract — anything tagged "unverifiable" must
// say why instead).
#include <gtest/gtest.h>

#include <set>

#include "crn/checks.h"
#include "crn/io.h"
#include "scenario/registry.h"
#include "verify/stable.h"

namespace crnkit::scenario {
namespace {

TEST(Registry, HasAtLeastTwelveScenarios) {
  EXPECT_GE(Registry::builtin().size(), 12u);
}

TEST(Registry, NamesAreSortedAndBuildable) {
  const auto names = Registry::builtin().names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  EXPECT_EQ(std::set<std::string>(names.begin(), names.end()).size(),
            names.size());
  for (const std::string& name : names) {
    const Scenario s = Registry::builtin().build(name);
    EXPECT_EQ(s.name, name);
  }
}

TEST(Registry, UnknownNameSuggestsCloseMatch) {
  try {
    (void)Registry::builtin().build("fig1/minn");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("fig1/min"), std::string::npos)
        << e.what();
  }
}

TEST(Registry, DuplicateRegistrationThrows) {
  Registry registry;
  registry.add("a/b", [] { return Scenario(); });
  EXPECT_THROW(registry.add("a/b", [] { return Scenario(); }),
               std::exception);
}

TEST(Registry, CircuitFamilyResolvesUnregisteredInstances) {
  // Any circuit/random-<n>-<seed> is addressable, not just the registered
  // representatives.
  const Registry& registry = Registry::builtin();
  EXPECT_TRUE(registry.contains("circuit/random-14-9"));
  const Scenario s = registry.build("circuit/random-14-9");
  EXPECT_EQ(s.name, "circuit/random-14-9");
  ASSERT_TRUE(s.reference.has_value());
  EXPECT_TRUE(s.has_tag("circuit"));
  // Deterministic: building twice gives the identical network.
  EXPECT_EQ(crn::to_text(registry.build("circuit/random-14-9").crn),
            crn::to_text(s.crn));
  // Non-members fall through to the usual unknown-name error, and
  // contains() stays a plain bool for all of them: wrong shape,
  // non-canonical spellings (leading zeros), absurd parameters.
  EXPECT_FALSE(registry.contains("circuit/random-14"));
  EXPECT_FALSE(registry.contains("circuit/random-x-y"));
  EXPECT_FALSE(registry.contains("circuit/random-07-1"));
  EXPECT_FALSE(registry.contains("circuit/random-100000-1"));
  EXPECT_THROW((void)registry.build("circuit/random-14"),
               std::invalid_argument);
  EXPECT_THROW((void)registry.build("circuit/random-100000-1"),
               std::invalid_argument);
}

TEST(Registry, CircuitFamilyInstancesVerifyExactly) {
  // A family member that is NOT a registered representative goes through
  // the same exact-verification contract as the catalog.
  const Scenario s = Registry::builtin().build("circuit/random-13-11");
  ASSERT_TRUE(s.reference.has_value());
  for (const fn::Point& x : s.verify_points) {
    const auto result =
        verify::check_stable_computation(s.crn, x, (*s.reference)(x));
    EXPECT_TRUE(result.ok && result.complete)
        << "at x = " << point_to_string(x);
  }
}

TEST(Scenarios, MetadataIsConsistent) {
  for (const Scenario& s : Registry::builtin().build_all()) {
    SCOPED_TRACE(s.name);
    EXPECT_FALSE(s.title.empty());
    EXPECT_FALSE(s.tags.empty());
    EXPECT_TRUE(s.crn.output().has_value());
    EXPECT_EQ(static_cast<int>(s.sim_input.size()), s.crn.input_arity());
    if (s.reference) {
      EXPECT_EQ(s.reference->dimension(), s.crn.input_arity());
    }
    for (const fn::Point& x : s.verify_points) {
      EXPECT_EQ(static_cast<int>(x.size()), s.crn.input_arity());
    }
    // The "oblivious" tag is a checked claim, not a label.
    EXPECT_EQ(s.has_tag("oblivious"), crn::is_output_oblivious(s.crn));
    EXPECT_EQ(s.has_tag("not-oblivious"),
              !crn::is_output_oblivious(s.crn));
    EXPECT_EQ(s.has_tag("leader"), s.crn.leader().has_value());
    EXPECT_EQ(s.unverifiable(), !s.unverifiable_reason.empty());
    EXPECT_EQ(s.expected_outputs().size(), s.verify_points.size());
  }
}

TEST(Scenarios, TextFormatRoundTripsEveryScenario) {
  for (const Scenario& s : Registry::builtin().build_all()) {
    SCOPED_TRACE(s.name);
    const std::string text = crn::to_text(s.crn);
    const crn::Crn parsed = crn::from_text(text);
    EXPECT_EQ(crn::to_text(parsed), text);
    EXPECT_EQ(parsed.species_count(), s.crn.species_count());
    EXPECT_EQ(parsed.reactions().size(), s.crn.reactions().size());
    EXPECT_EQ(parsed.input_arity(), s.crn.input_arity());
    EXPECT_EQ(parsed.leader().has_value(), s.crn.leader().has_value());
  }
}

TEST(Scenarios, EveryVerifiableScenarioPassesExactCheck) {
  for (const Scenario& s : Registry::builtin().build_all()) {
    if (s.unverifiable()) continue;
    SCOPED_TRACE(s.name);
    ASSERT_TRUE(s.reference.has_value());
    ASSERT_FALSE(s.verify_points.empty());
    verify::StableCheckOptions options;
    if (s.verify_max_configs > 0) {
      options.max_configs = s.verify_max_configs;
    }
    for (const fn::Point& x : s.verify_points) {
#ifndef NDEBUG
      // Debug builds explore an order of magnitude slower; the
      // multi-million-config frontier points of the "large" chains
      // (compose-18 at x=8, compose-24 at x=7) are Release workloads —
      // the bench gate and the crnc smoke tests keep covering them — so
      // Debug sweeps each large scenario at its small point only.
      if (s.has_tag("large") && &x != &s.verify_points.front()) continue;
#endif
      const auto result = verify::check_stable_computation(
          s.crn, x, (*s.reference)(x), options);
      EXPECT_TRUE(result.ok && result.complete)
          << "at x = " << point_to_string(x) << ": "
          << result.summary(s.crn);
    }
  }
}

TEST(Scenarios, BrokenCompositionIsActuallyBroken) {
  const Scenario s = Registry::builtin().build("fig1/2max-broken");
  ASSERT_TRUE(s.unverifiable());
  // The negative demo must stay negative: some verify point fails.
  bool some_failure = false;
  for (const fn::Point& x : s.verify_points) {
    const auto result =
        verify::check_stable_computation(s.crn, x, (*s.reference)(x));
    if (!result.ok) {
      some_failure = true;
      break;
    }
  }
  EXPECT_TRUE(some_failure);
}

TEST(PointStrings, RoundTrip) {
  EXPECT_EQ(point_to_string({3, 4}), "3,4");
  EXPECT_EQ(point_from_string("3,4"), (fn::Point{3, 4}));
  EXPECT_EQ(point_from_string("0"), (fn::Point{0}));
  EXPECT_THROW((void)point_from_string(""), std::invalid_argument);
  EXPECT_THROW((void)point_from_string("1,x"), std::invalid_argument);
  EXPECT_THROW((void)point_from_string("-1"), std::invalid_argument);
}

}  // namespace
}  // namespace crnkit::scenario
