// Tests for the Section 8 continuous bridge: infinity-scalings
// (Definition 8.1), the Theorem 8.2 correspondence with the continuous
// class of [9], and mass-action ODE demonstrations.
#include <gtest/gtest.h>

#include "compile/primitives.h"
#include "cont/continuous_class.h"
#include "cont/ode.h"
#include "cont/scaling.h"
#include "fn/examples.h"

namespace crnkit::cont {
namespace {

using math::Rational;
using math::RatVec;

TEST(Scaling, QuiltAffineScalesToItsGradient) {
  const auto g = fn::examples::fig3a_quilt();
  EXPECT_EQ(scaling_of(g), (RatVec{Rational(3, 2)}));
}

TEST(Scaling, NumericEstimateConvergesToGradient) {
  // |f(cz)/c - (3/2) z| <= 1/c for f = floor(3x/2).
  const auto f = fn::examples::floor_3x_over_2();
  const auto estimates = scaling_estimates(f, {1.0}, 8.0, 6);
  const double target = 1.5;
  double prev_err = 1e9;
  for (const double e : estimates) {
    const double err = std::abs(e - target);
    EXPECT_LE(err, prev_err + 1e-12);  // monotone-ish convergence
    prev_err = err;
  }
  EXPECT_NEAR(estimates.back(), target, 0.01);
}

TEST(Scaling, MinOfQuiltScalesToMinOfLinear) {
  const PiecewiseLinearMin fhat = scaling_of(fn::examples::fig4a_eventual());
  // fhat(z) = min(2z1+z2, z1+2z2, z1+z2): the constant offsets wash out.
  EXPECT_EQ(fhat({Rational(1), Rational(1)}), Rational(2));
  EXPECT_EQ(fhat({Rational(3), Rational(0)}), Rational(3));
  EXPECT_EQ(fhat({Rational(0), Rational(2)}), Rational(2));
}

TEST(Scaling, NumericMatchesAnalyticOnFig4a) {
  const PiecewiseLinearMin fhat = scaling_of(fn::examples::fig4a_eventual());
  const auto f = fn::examples::fig4a();
  for (const auto& z : std::vector<std::vector<double>>{
           {1.0, 1.0}, {2.0, 0.5}, {0.25, 3.0}}) {
    const double analytic =
        fhat({Rational(static_cast<math::Int>(z[0] * 4), 4),
              Rational(static_cast<math::Int>(z[1] * 4), 4)})
            .to_double();
    const double numeric = scaling_estimate(f, z, 4096.0);
    EXPECT_NEAR(numeric, analytic, 0.02) << z[0] << "," << z[1];
  }
}

TEST(Scaling, SuperadditivityOfMinOfLinear) {
  const PiecewiseLinearMin fhat = scaling_of(fn::examples::fig4a_eventual());
  std::vector<RatVec> points;
  for (math::Int a = 0; a <= 3; ++a) {
    for (math::Int b = 0; b <= 3; ++b) {
      points.push_back({Rational(a), Rational(b, 2)});
    }
  }
  EXPECT_TRUE(fhat.check_superadditive_on(points));
}

TEST(InfinityScaling, FacewiseEvaluationIsPositiveContinuous) {
  // fhat of min(x1,x2): min(z1,z2) on the open orthant, 0 on both axes.
  InfinityScaling fhat(2);
  fhat.set_face(0b00, PiecewiseLinearMin({{Rational(1), Rational(0)},
                                          {Rational(0), Rational(1)}}));
  fhat.set_face(0b01, PiecewiseLinearMin({{Rational(0), Rational(0)}}));
  fhat.set_face(0b10, PiecewiseLinearMin({{Rational(0), Rational(0)}}));
  fhat.set_face(0b11, PiecewiseLinearMin({{Rational(0), Rational(0)}}));
  EXPECT_EQ(fhat({Rational(2), Rational(3)}), Rational(2));
  EXPECT_EQ(fhat({Rational(0), Rational(3)}), Rational(0));
  EXPECT_EQ(fhat({Rational(0), Rational(0)}), Rational(0));
  EXPECT_FALSE(fhat.find_superadditivity_violation(
                       {{Rational(1), Rational(2)},
                        {Rational(0), Rational(1)},
                        {Rational(2), Rational(2)}})
                   .has_value());
}

TEST(InfinityScaling, MissingFaceThrows) {
  InfinityScaling fhat(2);
  fhat.set_face(0b00, PiecewiseLinearMin({{Rational(1), Rational(1)}}));
  EXPECT_THROW((void)fhat({Rational(0), Rational(1)}), std::invalid_argument);
}

TEST(Ode, ContinuousMinConvergesToMin) {
  // X1 + X2 -> Y from (x1, x2) = (2, 5): y(t) -> min = 2.
  const crn::Crn crn = compile::min_crn(2);
  Concentrations c0(crn.species_count(), 0.0);
  c0[static_cast<std::size_t>(crn.inputs()[0])] = 2.0;
  c0[static_cast<std::size_t>(crn.inputs()[1])] = 5.0;
  OdeOptions options;
  options.t_end = 40.0;
  const auto c = integrate_mass_action(crn, c0, options);
  EXPECT_NEAR(c[static_cast<std::size_t>(crn.output_or_throw())], 2.0, 1e-2);
  EXPECT_NEAR(c[static_cast<std::size_t>(crn.inputs()[1])], 3.0, 1e-2);
}

TEST(Ode, ScaleCrnDoublesMass) {
  const crn::Crn crn = compile::scale_crn(2);
  Concentrations c0(crn.species_count(), 0.0);
  c0[static_cast<std::size_t>(crn.inputs()[0])] = 3.0;
  OdeOptions options;
  options.t_end = 30.0;
  const auto c = integrate_mass_action(crn, c0, options);
  EXPECT_NEAR(c[static_cast<std::size_t>(crn.output_or_throw())], 6.0, 1e-2);
}

TEST(Ode, MassConservationWherePresent) {
  // X1 + X2 -> Y conserves x1 - x2.
  const crn::Crn crn = compile::min_crn(2);
  Concentrations c0(crn.species_count(), 0.0);
  c0[static_cast<std::size_t>(crn.inputs()[0])] = 4.0;
  c0[static_cast<std::size_t>(crn.inputs()[1])] = 1.5;
  const auto c = integrate_mass_action(crn, c0);
  const double diff = c[static_cast<std::size_t>(crn.inputs()[0])] -
                      c[static_cast<std::size_t>(crn.inputs()[1])];
  EXPECT_NEAR(diff, 2.5, 1e-6);
}

}  // namespace
}  // namespace crnkit::cont
