// The parallel explorer's reproducibility contract: for every thread
// count, explore() produces the *same graph* — node ids (and the arena
// configurations behind them), CSR edge sets, BFS parents, completeness,
// and therefore verdicts — as the serial explorer. This mirrors the
// EnsembleRunner guarantee (fixed seed => bit-identical trajectories at
// any thread count), extended to exact proofs.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "compile/primitives.h"
#include "compile/theorem52.h"
#include "crn/compose.h"
#include "fn/examples.h"
#include "scenario/registry.h"
#include "verify/stable.h"

namespace crnkit::verify {
namespace {

void expect_identical(const ReachabilityGraph& a, const ReachabilityGraph& b,
                      const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  ASSERT_EQ(a.complete, b.complete) << label;
  ASSERT_EQ(a.store.width(), b.store.width()) << label;
  // Node numbering: the arenas must match byte for byte.
  EXPECT_EQ(std::memcmp(a.store.view(0), b.store.view(0),
                        a.size() * a.store.width() *
                            sizeof(ConfigStore::Count)),
            0)
      << label << ": arena contents differ";
  EXPECT_EQ(a.succ_off, b.succ_off) << label;
  EXPECT_EQ(a.succ, b.succ) << label;
  EXPECT_EQ(a.parent, b.parent) << label;
  EXPECT_EQ(a.parent_reaction, b.parent_reaction) << label;
}

void sweep_thread_counts(const crn::Crn& crn, const crn::Config& initial,
                         std::size_t max_configs, const std::string& label) {
  const auto serial =
      explore(crn, initial, ExploreOptions{max_configs, /*threads=*/1});
  for (const int threads : {2, 3, 8}) {
    const auto parallel =
        explore(crn, initial, ExploreOptions{max_configs, threads});
    expect_identical(serial, parallel,
                     label + " @ threads=" + std::to_string(threads));
  }
}

TEST(ParallelExplore, AllVerifiableScenariosMatchSerial) {
  for (const scenario::Scenario& s :
       scenario::Registry::builtin().build_all()) {
    if (s.unverifiable()) continue;
    SCOPED_TRACE(s.name);
    // First verify point, budget capped to keep the sweep fast; the graph
    // comparison is exact either way.
    const fn::Point& x = s.verify_points.front();
    std::size_t budget = s.verify_max_configs > 0 ? s.verify_max_configs
                                                  : std::size_t{2'000'000};
    budget = std::min<std::size_t>(budget, 50'000);
    sweep_thread_counts(s.crn, s.crn.initial_configuration(x), budget,
                        s.name);
  }
}

TEST(ParallelExplore, AllVerifiableScenariosMatchSerialWhenTruncated) {
  // Same catalog sweep with a budget tight enough to cut wide levels
  // mid-frontier: the accepted prefix is defined by (shard, stage order),
  // so truncated graphs must also be bit-identical across thread counts
  // now that every parallel level runs through the task pool.
  for (const scenario::Scenario& s :
       scenario::Registry::builtin().build_all()) {
    if (s.unverifiable()) continue;
    SCOPED_TRACE(s.name);
    const fn::Point& x = s.verify_points.back();
    sweep_thread_counts(s.crn, s.crn.initial_configuration(x), 9'000,
                        s.name + " truncated");
  }
}

TEST(ParallelExplore, WideParallelLevelsActuallyUseThePool) {
  // Guards the port itself: a wide frontier at threads=8 must schedule
  // pool tasks (and resolve the requested thread count into the stats),
  // not fall back to the serial path.
  compile::ObliviousSpec spec{fn::examples::fig7(), 1,
                              fn::examples::fig7_extensions(), {}};
  const crn::Crn circuit = compile::compile_theorem52(spec);
  const auto graph = explore(circuit, circuit.initial_configuration({2, 2}),
                             ExploreOptions{2'000'000, /*threads=*/8});
  EXPECT_EQ(graph.stats.threads, 8);
  EXPECT_GT(graph.stats.pool_tasks, 0u)
      << "wide levels should run as task-pool chunks";
  // Serial exploration of the same graph schedules no pool work at all.
  const auto serial = explore(circuit, circuit.initial_configuration({2, 2}),
                              ExploreOptions{2'000'000, /*threads=*/1});
  EXPECT_EQ(serial.stats.pool_tasks, 0u);
  expect_identical(serial, graph, "thm52(2,2) pool stats run");
}

TEST(ParallelExplore, WideFrontiersEngageTheShardedPath) {
  // Levels above the parallel threshold (the small-frontier fallback is
  // trivially identical): the Theorem 5.2 circuit at (2,2) explores
  // ~18.5k configs with frontiers in the thousands.
  compile::ObliviousSpec spec{fn::examples::fig7(), 1,
                              fn::examples::fig7_extensions(), {}};
  const crn::Crn circuit = compile::compile_theorem52(spec);
  sweep_thread_counts(circuit, circuit.initial_configuration({2, 2}),
                      2'000'000, "thm52(2,2)");
}

TEST(ParallelExplore, TruncationIsDeterministicAcrossThreadCounts) {
  // The budget can cut a wide level mid-frontier; the accepted prefix is
  // defined by (shard, stage order), not by thread scheduling.
  compile::ObliviousSpec spec{fn::examples::fig7(), 1,
                              fn::examples::fig7_extensions(), {}};
  const crn::Crn circuit = compile::compile_theorem52(spec);
  sweep_thread_counts(circuit, circuit.initial_configuration({2, 2}), 7'000,
                      "thm52(2,2) truncated");
}

TEST(ParallelExplore, ConcurrentExplorationsDoNotBleedPoolCounters) {
  // stats.pool_tasks/pool_steals are attributed per exploration through
  // util::TaskPool::CounterScope: two explorations sharing the process
  // pool must each report exactly the chunk count of their own run (a
  // deterministic function of the frontier sizes), not a mix of both.
  compile::ObliviousSpec spec{fn::examples::fig7(), 1,
                              fn::examples::fig7_extensions(), {}};
  const crn::Crn circuit = compile::compile_theorem52(spec);
  const auto solo = explore(circuit, circuit.initial_configuration({2, 2}),
                            ExploreOptions{2'000'000, /*threads=*/4});
  ASSERT_GT(solo.stats.pool_tasks, 0u);

  ExploreStats a, b;
  std::thread ta([&] {
    a = explore(circuit, circuit.initial_configuration({2, 2}),
                ExploreOptions{2'000'000, /*threads=*/4})
            .stats;
  });
  std::thread tb([&] {
    b = explore(circuit, circuit.initial_configuration({2, 2}),
                ExploreOptions{2'000'000, /*threads=*/4})
            .stats;
  });
  ta.join();
  tb.join();
  EXPECT_EQ(a.pool_tasks, solo.stats.pool_tasks)
      << "exploration A absorbed another run's pool counters";
  EXPECT_EQ(b.pool_tasks, solo.stats.pool_tasks)
      << "exploration B absorbed another run's pool counters";
  // Steals can only come from this exploration's own scheduled chunks.
  EXPECT_LE(a.pool_steals, a.pool_tasks);
  EXPECT_LE(b.pool_steals, b.pool_tasks);
}

TEST(ParallelExplore, VerdictsMatchSerial) {
  const crn::Crn composed = crn::concatenate(
      compile::min_crn(2), compile::scale_crn(2), "2min");
  for (const int threads : {1, 4}) {
    StableCheckOptions options;
    options.threads = threads;
    const auto good = check_stable_computation(composed, {3, 5}, 6, options);
    EXPECT_TRUE(good.ok && good.complete) << "threads=" << threads;
    const auto bad = check_stable_computation(composed, {3, 5}, 7, options);
    EXPECT_FALSE(bad.ok) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace crnkit::verify
