// Tests for tuple-valued computation (footnote 6): parallel combination of
// output-oblivious modules computes f : N^d -> N^l componentwise.
#include <gtest/gtest.h>

#include "compile/oned.h"
#include "compile/primitives.h"
#include "crn/checks.h"
#include "crn/compose.h"
#include "fn/examples.h"
#include "sim/scheduler.h"
#include "verify/reachability.h"

namespace crnkit::crn {
namespace {

using math::Int;

/// Runs the tuple CRN to silence and returns the component outputs.
std::vector<Int> run_tuple(const TupleCrn& tuple, const fn::Point& x,
                           std::uint64_t seed) {
  sim::Rng rng(seed);
  const auto run = sim::run_until_silent(
      tuple.crn, tuple.crn.initial_configuration(x), rng);
  EXPECT_TRUE(run.silent);
  std::vector<Int> out;
  for (int k = 0; k < static_cast<int>(tuple.outputs.size()); ++k) {
    out.push_back(tuple.output_count(run.final_config, k));
  }
  return out;
}

TEST(Tuple, MinAndDoubleInParallel) {
  // f(x1, x2) = (min(x1, x2), 2 x1): the doubler sees only input 1, so wrap
  // it as a 2-input module via a tiny circuit first.
  Circuit doubler_wrap(2, "double-x1");
  const int doubler = doubler_wrap.add_module(compile::scale_crn(2));
  doubler_wrap.connect(Wire::external(0), doubler, 0);
  doubler_wrap.add_output(Wire::of_module(doubler));
  // Unused external input 1 is allowed (it simply never reacts).
  const TupleCrn tuple = parallel_tuple(
      {compile::min_crn(2), doubler_wrap.compile()}, "min-and-double");

  for (const auto& x : std::vector<fn::Point>{{0, 0}, {2, 5}, {5, 2},
                                              {4, 4}}) {
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      const auto out = run_tuple(tuple, x, seed);
      ASSERT_EQ(out.size(), 2u);
      EXPECT_EQ(out[0], std::min(x[0], x[1])) << seed;
      EXPECT_EQ(out[1], 2 * x[0]) << seed;
    }
  }
}

TEST(Tuple, ThreeComponents1D) {
  // f(x) = (2x, floor(3x/2), min(3, x)) — three Theorem 3.1 modules.
  const fn::DiscreteFunction min3(
      1, [](const fn::Point& x) { return std::min<Int>(3, x[0]); }, "min3");
  const TupleCrn tuple = parallel_tuple(
      {compile::scale_crn(2),
       compile::compile_oned(fn::examples::floor_3x_over_2()),
       compile::compile_oned(min3)},
      "triple");
  ASSERT_EQ(tuple.outputs.size(), 3u);
  for (Int x = 0; x <= 9; ++x) {
    const auto out = run_tuple(tuple, {x}, 17 + static_cast<std::uint64_t>(x));
    EXPECT_EQ(out[0], 2 * x);
    EXPECT_EQ(out[1], (3 * x) / 2);
    EXPECT_EQ(out[2], std::min<Int>(3, x));
  }
}

TEST(Tuple, StaysOutputObliviousInEveryComponent) {
  const TupleCrn tuple = parallel_tuple(
      {compile::min_crn(2), compile::min_crn(2)}, "two-mins");
  // No reaction consumes any of the tuple outputs.
  for (const std::string& y : tuple.outputs) {
    const SpeciesId id = tuple.crn.species(y);
    for (const Reaction& r : tuple.crn.reactions()) {
      EXPECT_EQ(r.reactant_count(id), 0) << y;
    }
  }
}

TEST(Tuple, LeaderSplitsOnce) {
  const fn::DiscreteFunction min3(
      1, [](const fn::Point& x) { return std::min<Int>(3, x[0]); }, "min3");
  const TupleCrn tuple = parallel_tuple(
      {compile::compile_oned(min3),
       compile::compile_oned(fn::examples::floor_3x_over_2())},
      "two-leaders");
  ASSERT_TRUE(tuple.crn.leader().has_value());
  // Exactly one reaction consumes the top leader.
  int consumers = 0;
  for (const Reaction& r : tuple.crn.reactions()) {
    if (r.reactant_count(*tuple.crn.leader()) > 0) ++consumers;
  }
  EXPECT_EQ(consumers, 1);
}

TEST(Tuple, RejectsMixedArityAndNonOblivious) {
  EXPECT_THROW(
      (void)parallel_tuple({compile::min_crn(2), compile::scale_crn(2)}),
      std::invalid_argument);
  EXPECT_THROW((void)parallel_tuple({compile::fig1_max_crn()}),
               std::logic_error);
  EXPECT_THROW((void)parallel_tuple({}), std::invalid_argument);
}

TEST(Tuple, ExhaustiveSmallProof) {
  // Exhaustively verify both components stabilize correctly from every
  // reachable configuration (not just along silent runs): both outputs'
  // reachable final values must be unique.
  const TupleCrn tuple = parallel_tuple(
      {compile::min_crn(2), compile::min_crn(2)}, "two-mins");
  const auto graph = verify::explore(
      tuple.crn, tuple.crn.initial_configuration({2, 3}));
  ASSERT_TRUE(graph.complete);
  for (std::size_t i = 0; i < graph.size(); ++i) {
    const crn::Config config = graph.config(static_cast<int>(i));
    if (!tuple.crn.is_silent(config)) continue;
    EXPECT_EQ(tuple.output_count(config, 0), 2);
    EXPECT_EQ(tuple.output_count(config, 1), 2);
  }
}

}  // namespace
}  // namespace crnkit::crn
