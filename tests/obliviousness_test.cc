// Tests for the one-call obliviousness classifier: every example function
// of the paper lands on the right side of the Theorem 5.2 / 5.4 decision
// surface with the right evidence attached.
#include <gtest/gtest.h>

#include "analysis/obliviousness.h"
#include "compile/theorem52.h"
#include "fn/examples.h"
#include "verify/simcheck.h"

namespace crnkit::analysis {
namespace {

TEST(Classifier, MinIsComputable) {
  AnalysisInput input{fn::examples::min2(), fn::examples::fig7_arrangement(),
                      1, 12};
  const auto verdict = classify_obliviousness(input);
  EXPECT_EQ(verdict.verdict, Obliviousness::kComputable) << verdict.summary();
  ASSERT_TRUE(verdict.spec.has_value());
  EXPECT_FALSE(verdict.witness.has_value());
}

TEST(Classifier, MaxIsNotComputableWithWitness) {
  AnalysisInput input{fn::examples::max2(), fn::examples::fig7_arrangement(),
                      1, 12};
  const auto verdict = classify_obliviousness(input);
  EXPECT_EQ(verdict.verdict, Obliviousness::kNotComputable)
      << verdict.summary();
  EXPECT_TRUE(verdict.witness.has_value());
}

TEST(Classifier, Eq2IsNotComputable) {
  AnalysisInput input{fn::examples::eq2_counterexample(),
                      fn::examples::fig7_arrangement(), 1, 12};
  const auto verdict = classify_obliviousness(input);
  EXPECT_EQ(verdict.verdict, Obliviousness::kNotComputable)
      << verdict.summary();
}

TEST(Classifier, DecreasingFunctionRejectedByObservation21) {
  const fn::DiscreteFunction dec(
      2,
      [](const fn::Point& x) { return std::max<math::Int>(0, 9 - x[0] - x[1]); },
      "decreasing");
  AnalysisInput input{dec, fn::examples::fig7_arrangement(), 1, 10};
  const auto verdict = classify_obliviousness(input);
  EXPECT_EQ(verdict.verdict, Obliviousness::kNotComputable);
  EXPECT_NE(verdict.reason.find("Observation 2.1"), std::string::npos)
      << verdict.reason;
}

TEST(Classifier, Fig7SpecCompilesAndVerifies) {
  AnalysisInput input{fn::examples::fig7(), fn::examples::fig7_arrangement(),
                      1, 12};
  const auto verdict = classify_obliviousness(input);
  ASSERT_EQ(verdict.verdict, Obliviousness::kComputable) << verdict.summary();
  ASSERT_TRUE(verdict.spec.has_value());
  const crn::Crn crn = compile::compile_theorem52(*verdict.spec);
  const auto result = verify::sim_check_points(
      crn, fn::examples::fig7(), {{0, 0}, {3, 3}, {2, 7}, {8, 5}});
  EXPECT_TRUE(result.ok) << result.summary();
}

TEST(Classifier, Fig4aIsComputable) {
  AnalysisInput input{fn::examples::fig4a(),
                      fn::examples::fig4a_arrangement(), 2, 14};
  const auto verdict = classify_obliviousness(input);
  EXPECT_EQ(verdict.verdict, Obliviousness::kComputable) << verdict.summary();
}

TEST(Classifier, WrongArrangementIsInconclusiveNotWrong) {
  // fig4a analyzed over an arrangement that misses its switch hyperplanes:
  // the extension fits fail, but no witness exists, so the verdict must be
  // inconclusive — never a false "not computable".
  AnalysisInput input{fn::examples::fig4a(), fn::examples::fig7_arrangement(),
                      1, 10};
  const auto verdict = classify_obliviousness(input);
  EXPECT_NE(verdict.verdict, Obliviousness::kNotComputable)
      << verdict.summary();
}

}  // namespace
}  // namespace crnkit::analysis
