// Tests for the CRN optimization passes: each pass's rewrite in isolation,
// and pass-equivalence — the optimized network must carry exactly the same
// stable-computation verdicts as the input network (exact checker on small
// grids; the circuit_expr tests add simcheck beyond).
#include <gtest/gtest.h>

#include "compile/primitives.h"
#include "crn/checks.h"
#include "crn/compose.h"
#include "crn/io.h"
#include "crn/passes.h"
#include "verify/stable.h"

namespace crnkit::crn {
namespace {

using math::Int;

Crn from(const std::string& text) { return from_text(text); }

TEST(Passes, FuseDuplicateReactions) {
  const Crn crn = from(R"(
crn dup
inputs X
output Y
rxn X -> Y
rxn X -> Y
rxn X -> Y
rxn 2 X -> X + Y
)");
  const Crn fused = fuse_duplicate_reactions(crn);
  EXPECT_EQ(fused.reactions().size(), 2u);
  EXPECT_EQ(fused.species_count(), crn.species_count());
  EXPECT_TRUE(verify::check_stable_computation(fused, {3}, 3).ok);
}

TEST(Passes, DeadSpeciesRemovesNeverFiringReactions) {
  // G is never producible, so G + X -> Q can never fire; Q then vanishes
  // with it, and the inert waste species W is stripped from products.
  const Crn crn = from(R"(
crn dead
species G Q W
inputs X
output Y
rxn X -> Y + W
rxn G + X -> Q
)");
  const Crn cleaned = eliminate_dead_species(crn);
  EXPECT_EQ(cleaned.reactions().size(), 1u);
  EXPECT_FALSE(cleaned.has_species("G"));
  EXPECT_FALSE(cleaned.has_species("Q"));
  EXPECT_FALSE(cleaned.has_species("W"));
  EXPECT_TRUE(cleaned.has_species("X"));
  EXPECT_TRUE(verify::check_stable_computation(cleaned, {4}, 4).ok);
}

TEST(Passes, DeadSpeciesKeepsRoleSpecies) {
  // The output is never produced here; it must survive anyway.
  const Crn crn = from(R"(
crn inert
inputs X
output Y
rxn X -> K
)");
  const Crn cleaned = eliminate_dead_species(crn);
  EXPECT_TRUE(cleaned.has_species("Y"));
  EXPECT_TRUE(verify::check_stable_computation(cleaned, {2}, 0).ok);
}

TEST(Passes, CollapseFanoutChains) {
  // A -> B -> C -> Y conversion chain collapses to a single conversion.
  const Crn crn = from(R"(
crn chain
inputs X
output Y
rxn X -> A
rxn A -> B
rxn B -> C
rxn C -> Y
)");
  const Crn collapsed = collapse_fanout_chains(crn);
  EXPECT_EQ(collapsed.reactions().size(), 1u);
  EXPECT_TRUE(verify::check_stable_computation(collapsed, {5}, 5).ok);
}

TEST(Passes, CollapseKeepsRolesAndNonUnaryConsumers) {
  // B is consumed by a binary reaction: no collapse. The input X and the
  // output Y are never collapsed even when their shape matches.
  const Crn crn = from(R"(
crn keep
inputs X1 X2
output Y
rxn X1 -> B
rxn X2 -> C
rxn B + C -> Y
)");
  const Crn collapsed = collapse_fanout_chains(crn);
  EXPECT_EQ(collapsed.reactions().size(), 3u);
  EXPECT_TRUE(verify::check_stable_computation(collapsed, {2, 3}, 2).ok);
}

TEST(Passes, RenumberOrdersRolesFirstAndDropsUnused) {
  Crn crn("renumber");
  crn.add_species("Zfirst");  // unused: dropped
  crn.add_species("Mid");
  crn.set_input_species({"X"});
  crn.set_output_species("Y");
  crn.add_reaction({{"X", 1}}, {{"Mid", 1}});
  crn.add_reaction({{"Mid", 1}}, {{"Y", 1}});
  const Crn renumbered = renumber_species(crn);
  EXPECT_EQ(renumbered.species_count(), 3u);
  EXPECT_EQ(renumbered.species_name(SpeciesId{0}), "X");
  EXPECT_FALSE(renumbered.has_species("Zfirst"));
  EXPECT_EQ(renumbered.species_name(renumbered.output_or_throw()), "Y");
  EXPECT_TRUE(verify::check_stable_computation(renumbered, {3}, 3).ok);
}

TEST(Passes, OptimizeCollapsesIdentityChains) {
  // The Observation 2.2 identity chain is pure conversion: 18 stages
  // collapse to the single reaction X -> Y, turning the 1.5M-config exact
  // proof of chain/compose-18 into a trivial one.
  Crn chain = compile::identity_crn();
  for (int stage = 1; stage < 18; ++stage) {
    chain = concatenate(chain, compile::identity_crn());
  }
  const PassPipelineResult result = optimize(chain);
  EXPECT_EQ(result.reactions_after, 1u);
  EXPECT_EQ(result.species_after, 2u);
  EXPECT_GE(result.reactions_before, 18u);
  EXPECT_FALSE(result.passes.empty());
  for (const PassStats& p : result.passes) {
    EXPECT_GE(p.species_before, p.species_after) << p.pass;
    EXPECT_GE(p.reactions_before, p.reactions_after) << p.pass;
  }
  EXPECT_TRUE(verify::check_stable_computation(result.crn, {8}, 8).ok);
}

TEST(Passes, EquivalenceOnVerdicts) {
  // Pass-equivalence includes *negative* verdicts: the broken 2max
  // composition must still fail at the same points after optimization.
  const Crn broken = concatenate(compile::fig1_max_crn(),
                                 compile::scale_crn(2), "2max");
  const Crn optimized = optimize(broken).crn;
  for (Int a = 0; a <= 2; ++a) {
    for (Int b = 0; b <= 2; ++b) {
      const Int expected = 2 * std::max(a, b);
      const bool before =
          verify::check_stable_computation(broken, {a, b}, expected).ok;
      const bool after =
          verify::check_stable_computation(optimized, {a, b}, expected).ok;
      EXPECT_EQ(before, after) << a << "," << b;
    }
  }
}

TEST(Passes, EquivalenceAcrossPrimitives) {
  // Optimizing a compiled primitive must preserve its function exactly
  // (even when the passes find nothing to shrink).
  const Crn affine = compile::affine_crn({2, 3}, 1);
  const Crn optimized = optimize(affine).crn;
  for (Int a = 0; a <= 3; ++a) {
    for (Int b = 0; b <= 3; ++b) {
      EXPECT_TRUE(verify::check_stable_computation(optimized, {a, b},
                                                   2 * a + 3 * b + 1)
                      .ok)
          << a << "," << b;
    }
  }
}

TEST(Passes, CanonicalHashInvariantUnderRenamingAndReordering) {
  // The same network under a species renaming and a reaction reordering —
  // the proof cache keys on this hash, so it must not see a difference.
  const Crn original = compile::fig1_max_crn();
  const Crn relabeled = from(R"(
crn relabeled-max
inputs A1 A2
output Out
rxn Gate + Out -> 0
rxn A2 -> W2 + Out
rxn W1 + W2 -> Gate
rxn A1 -> W1 + Out
)");
  EXPECT_EQ(canonical_hash(original), canonical_hash(relabeled));
  // The canonical forms are the same network up to names: hashing them
  // again must agree too (canonical_form is idempotent under the hash).
  EXPECT_EQ(canonical_hash(canonical_form(original)),
            canonical_hash(canonical_form(relabeled)));
}

TEST(Passes, CanonicalHashDistinguishesDifferentNetworks) {
  const Crn min2 = compile::min_crn(2);
  const Crn broken = crn::concatenate(compile::fig1_max_crn(),
                                      compile::scale_crn(2), "2max");
  EXPECT_NE(canonical_hash(min2), canonical_hash(broken));
  EXPECT_NE(canonical_hash(min2), canonical_hash(compile::fig1_max_crn()));
  // Hash is stable across recomputation on a fresh copy.
  EXPECT_EQ(canonical_hash(min2), canonical_hash(compile::min_crn(2)));
}

TEST(Passes, NewPrimitivesComputeTheirFunctions) {
  for (Int x = 0; x <= 5; ++x) {
    EXPECT_TRUE(verify::check_stable_computation(compile::max_const_crn(2),
                                                 {x}, std::max(x, Int{2}))
                    .ok)
        << x;
  }
  EXPECT_TRUE(is_output_oblivious(compile::max_const_crn(3)));
  EXPECT_TRUE(
      verify::check_stable_computation(compile::affine_crn({0, 1}, 2),
                                       {4, 3}, 5)
          .ok);
}

}  // namespace
}  // namespace crnkit::crn
