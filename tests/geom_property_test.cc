// Property sweeps over random threshold arrangements: the structural facts
// Section 7 relies on must hold for arbitrary arrangements, not just the
// figure examples —
//   - realized regions partition the integer grid;
//   - cone containment is reflexive and transitive;
//   - determined implies eventual; positive recession witnesses really
//     recede (x + k v stays in the region for all k);
//   - strips partition a region's points and are closed under the W-coset
//     relation;
//   - Fourier-Motzkin agrees with brute force in 3D.
#include <gtest/gtest.h>

#include <random>

#include "geom/arrangement.h"
#include "geom/fourier_motzkin.h"
#include "geom/strips.h"

namespace crnkit::geom {
namespace {

using math::Int;
using math::Rational;

Arrangement random_arrangement(std::mt19937_64& rng, int d, int count) {
  std::uniform_int_distribution<Int> coeff(-2, 2);
  std::uniform_int_distribution<Int> offset(-3, 5);
  std::vector<ThresholdHyperplane> hps;
  while (static_cast<int>(hps.size()) < count) {
    std::vector<Int> normal(static_cast<std::size_t>(d));
    bool nonzero = false;
    for (auto& t : normal) {
      t = coeff(rng);
      nonzero |= (t != 0);
    }
    if (!nonzero) continue;
    hps.push_back({std::move(normal), offset(rng)});
  }
  return Arrangement(d, std::move(hps));
}

class ArrangementSweep : public ::testing::TestWithParam<int> {};

TEST_P(ArrangementSweep, RealizedRegionsPartitionTheGrid) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 48611 + 5);
  const int d = 2 + GetParam() % 2;
  const Arrangement arr = random_arrangement(rng, d, 3);
  const Int grid = d == 2 ? 9 : 5;
  const auto regions = arr.enumerate_regions(grid);
  for_each_grid_point(d, grid, [&](const std::vector<Int>& x) {
    int containing = 0;
    for (const auto& realized : regions) {
      if (realized.region.contains(x)) ++containing;
    }
    EXPECT_EQ(containing, 1) << "point in " << containing << " regions";
  });
}

TEST_P(ArrangementSweep, ConeContainmentIsReflexiveAndTransitive) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 15485863 + 2);
  const Arrangement arr = random_arrangement(rng, 2, 3);
  const auto regions = arr.enumerate_regions(8);
  for (const auto& a : regions) {
    EXPECT_TRUE(cone_subset(a.region, a.region));
  }
  for (const auto& a : regions) {
    for (const auto& b : regions) {
      for (const auto& c : regions) {
        if (cone_subset(a.region, b.region) &&
            cone_subset(b.region, c.region)) {
          EXPECT_TRUE(cone_subset(a.region, c.region));
        }
      }
    }
  }
}

TEST_P(ArrangementSweep, DeterminedImpliesEventualAndWitnessesRecede) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 32452843 + 9);
  const Arrangement arr = random_arrangement(rng, 2, 3);
  for (const auto& realized : arr.enumerate_regions(9)) {
    const Region& r = realized.region;
    if (r.is_determined()) {
      EXPECT_TRUE(r.is_eventual()) << r.to_string();
    }
    const auto dir = r.positive_recession_direction();
    if (!dir) continue;
    // The witness really is a recession direction from every sample.
    const auto& x0 = realized.sample_points.front();
    for (Int k = 1; k <= 4; ++k) {
      std::vector<Int> x = x0;
      for (std::size_t i = 0; i < x.size(); ++i) x[i] += k * (*dir)[i];
      EXPECT_TRUE(r.contains(x)) << r.to_string() << " k=" << k;
    }
    for (const Int v : *dir) EXPECT_GT(v, 0);
  }
}

TEST_P(ArrangementSweep, StripsPartitionRegionPoints) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 86028121 + 4);
  const Arrangement arr = random_arrangement(rng, 2, 2);
  const Int grid = 8;
  for (const auto& realized : arr.enumerate_regions(grid)) {
    const auto strips = decompose_strips(realized.region, grid);
    std::size_t total = 0;
    for (const auto& strip : strips) {
      total += strip.points.size();
      // All points of one strip share the W-coset.
      for (std::size_t i = 1; i < strip.points.size(); ++i) {
        EXPECT_TRUE(same_strip(realized.region, strip.points[0],
                               strip.points[i]));
      }
    }
    EXPECT_EQ(total, realized.sample_points.size());
    // Points of distinct strips are in distinct cosets.
    for (std::size_t s = 0; s + 1 < strips.size(); ++s) {
      EXPECT_FALSE(same_strip(realized.region, strips[s].points[0],
                              strips[s + 1].points[0]));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomArrangements, ArrangementSweep,
                         ::testing::Range(0, 10));

class FourierMotzkin3D : public ::testing::TestWithParam<int> {};

TEST_P(FourierMotzkin3D, AgreesWithBruteForceInThreeDimensions) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 49979687 + 3);
  std::uniform_int_distribution<Int> coeff(-2, 2);
  std::uniform_int_distribution<Int> rhs(-2, 2);
  std::uniform_int_distribution<int> count(2, 5);
  std::vector<LinearConstraint> constraints;
  const int k = count(rng);
  for (int i = 0; i < k; ++i) {
    math::RatVec coeffs{Rational(coeff(rng)), Rational(coeff(rng)),
                        Rational(coeff(rng))};
    constraints.push_back(ge(std::move(coeffs), Rational(rhs(rng))));
  }
  const auto witness = find_solution(constraints, 3);
  bool grid_hit = false;
  for (Int a = -8; a <= 8 && !grid_hit; ++a) {
    for (Int b = -8; b <= 8 && !grid_hit; ++b) {
      for (Int c = -8; c <= 8 && !grid_hit; ++c) {
        const math::RatVec z{Rational(a), Rational(b), Rational(c)};
        bool all = true;
        for (const auto& constraint : constraints) {
          if (!satisfies(constraint, z)) {
            all = false;
            break;
          }
        }
        grid_hit = all;
      }
    }
  }
  if (grid_hit) {
    ASSERT_TRUE(witness.has_value());
  }
  if (witness) {
    for (const auto& constraint : constraints) {
      EXPECT_TRUE(satisfies(constraint, *witness)) << constraint.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSystems3D, FourierMotzkin3D,
                         ::testing::Range(0, 16));

}  // namespace
}  // namespace crnkit::geom
