// Checkpoint/resume for the exact explorer: the on-disk format round-trips
// and rejects corruption, and — the property the whole feature rests on —
// a resumed exploration converges to a graph bit-identical to the
// uninterrupted run (node ids, arena bytes, CSR edges, BFS parents,
// completeness), because exploration is deterministic.
#include "verify/checkpoint.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "compile/theorem52.h"
#include "fn/examples.h"
#include "scenario/registry.h"
#include "util/deadline.h"
#include "verify/reachability.h"

namespace crnkit::verify {
namespace {

std::string temp_path(const std::string& stem) {
  return testing::TempDir() + stem + "." + std::to_string(::getpid());
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

void expect_identical(const ReachabilityGraph& a, const ReachabilityGraph& b,
                      const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  ASSERT_EQ(a.complete, b.complete) << label;
  ASSERT_EQ(a.store.width(), b.store.width()) << label;
  EXPECT_EQ(std::memcmp(a.store.view(0), b.store.view(0),
                        a.size() * a.store.width() *
                            sizeof(ConfigStore::Count)),
            0)
      << label << ": arena contents differ";
  EXPECT_EQ(a.succ_off, b.succ_off) << label;
  EXPECT_EQ(a.succ, b.succ) << label;
  EXPECT_EQ(a.parent, b.parent) << label;
  EXPECT_EQ(a.parent_reaction, b.parent_reaction) << label;
}

TEST(Checkpoint, SaveLoadRoundtrip) {
  const std::string path = temp_path("ckpt_roundtrip");
  const std::vector<ConfigStore::Count> pool = {1, 2, 3, 4, 5, 6};
  const std::vector<std::uint64_t> id_hash = {0x11, 0x22};
  const std::vector<std::uint64_t> succ_off = {0, 1};
  const std::vector<std::int32_t> succ = {1};
  const std::vector<std::int32_t> parent = {-1, 0};
  const std::vector<std::int32_t> parent_reaction = {-1, 0};

  ExploreCheckpointView view;
  view.crn_hash = 0xabcdef;
  view.initial_hash = 0x123456;
  view.width = 3;
  view.max_configs = 100;
  view.level_begin = 1;
  view.level_end = 2;
  view.levels = 1;
  view.frontier_peak = 1;
  view.complete = 1;
  view.pool = &pool;
  view.id_hash = &id_hash;
  view.succ_off = &succ_off;
  view.succ = &succ;
  view.parent = &parent;
  view.parent_reaction = &parent_reaction;

  std::string error;
  ASSERT_TRUE(save_checkpoint(path, view, &error)) << error;

  ExploreCheckpoint loaded;
  ASSERT_TRUE(load_checkpoint(path, &loaded, &error)) << error;
  EXPECT_EQ(loaded.crn_hash, view.crn_hash);
  EXPECT_EQ(loaded.initial_hash, view.initial_hash);
  EXPECT_EQ(loaded.width, view.width);
  EXPECT_EQ(loaded.max_configs, view.max_configs);
  EXPECT_EQ(loaded.level_begin, view.level_begin);
  EXPECT_EQ(loaded.level_end, view.level_end);
  EXPECT_EQ(loaded.levels, view.levels);
  EXPECT_EQ(loaded.frontier_peak, view.frontier_peak);
  EXPECT_EQ(loaded.complete, view.complete);
  EXPECT_EQ(loaded.pool, pool);
  EXPECT_EQ(loaded.id_hash, id_hash);
  EXPECT_EQ(loaded.succ_off, succ_off);
  EXPECT_EQ(loaded.succ, succ);
  EXPECT_EQ(loaded.parent, parent);
  EXPECT_EQ(loaded.parent_reaction, parent_reaction);
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsMissingCorruptAndTruncatedFiles) {
  const std::string path = temp_path("ckpt_corrupt");
  ExploreCheckpoint out;
  std::string error;
  EXPECT_FALSE(load_checkpoint(path + ".nope", &out, &error));
  EXPECT_FALSE(error.empty());

  // A valid file to mutilate.
  const std::vector<ConfigStore::Count> pool = {1, 2};
  const std::vector<std::uint64_t> id_hash = {0x11};
  const std::vector<std::uint64_t> succ_off = {0};
  const std::vector<std::int32_t> succ = {};
  const std::vector<std::int32_t> parent = {-1};
  const std::vector<std::int32_t> parent_reaction = {-1};
  ExploreCheckpointView view;
  view.width = 2;
  view.level_begin = 0;
  view.level_end = 1;
  view.pool = &pool;
  view.id_hash = &id_hash;
  view.succ_off = &succ_off;
  view.succ = &succ;
  view.parent = &parent;
  view.parent_reaction = &parent_reaction;
  ASSERT_TRUE(save_checkpoint(path, view, &error)) << error;
  const std::string good = read_file(path);
  ASSERT_FALSE(good.empty());

  // Every single-byte flip anywhere in the file must be rejected (the
  // magic check catches the prefix, the checksum everything else).
  for (const std::size_t at : {std::size_t{0}, std::size_t{4},
                               std::size_t{20}, good.size() / 2,
                               good.size() - 1}) {
    std::string bad = good;
    bad[at] = static_cast<char>(bad[at] ^ 0x40);
    write_file(path, bad);
    EXPECT_FALSE(load_checkpoint(path, &out, &error))
        << "bit flip at byte " << at << " was accepted";
  }

  // Every truncation must be rejected too.
  for (const std::size_t keep : {std::size_t{0}, std::size_t{7},
                                 good.size() / 2, good.size() - 1}) {
    write_file(path, good.substr(0, keep));
    EXPECT_FALSE(load_checkpoint(path, &out, &error))
        << "truncation to " << keep << " bytes was accepted";
  }

  write_file(path, good);
  EXPECT_TRUE(load_checkpoint(path, &out, &error)) << error;
  std::remove(path.c_str());
}

TEST(Checkpoint, CancelledRunSavesAResumableCheckpoint) {
  const std::string path = temp_path("ckpt_cancelled");
  const scenario::Scenario s =
      scenario::Registry::builtin().build("fig1/min");
  const crn::Config initial =
      s.crn.initial_configuration(s.verify_points.front());

  util::CancelToken cancelled;
  cancelled.cancel();
  ExploreOptions options;
  options.max_configs = 100'000;
  options.threads = 1;
  options.cancel = &cancelled;
  options.checkpoint_path = path;
  const auto graph = explore(s.crn, initial, options);
  EXPECT_TRUE(graph.cancelled);
  EXPECT_FALSE(graph.complete);

  ExploreCheckpoint ckpt;
  std::string error;
  ASSERT_TRUE(load_checkpoint(path, &ckpt, &error)) << error;
  EXPECT_EQ(ckpt.crn_hash, concrete_crn_fingerprint(s.crn));
  EXPECT_EQ(ckpt.width, s.crn.species_count());
  EXPECT_EQ(ckpt.max_configs, std::uint64_t{100'000});
  // Early stop is recoverable: the checkpoint must NOT inherit the
  // cancelled run's incomplete marker, or no resume could ever prove.
  EXPECT_EQ(ckpt.complete, 1);
  std::remove(path.c_str());
}

TEST(Checkpoint, ResumeFromCancelConvergesBitIdentical) {
  const std::string path = temp_path("ckpt_resume_root");
  const scenario::Scenario s =
      scenario::Registry::builtin().build("fig1/min");
  // (4,4), not the front() (0,0) point whose reachable set is a single
  // config — the interruption below needs something left to resume.
  const crn::Config initial =
      s.crn.initial_configuration(s.verify_points.back());

  ExploreOptions base;
  base.max_configs = 100'000;
  base.threads = 1;
  const auto reference = explore(s.crn, initial, base);
  ASSERT_TRUE(reference.complete);
  ASSERT_GT(reference.size(), 1u);

  // Interrupt at the very first safepoint, then resume to the end.
  util::CancelToken cancelled;
  cancelled.cancel();
  ExploreOptions cut = base;
  cut.cancel = &cancelled;
  cut.checkpoint_path = path;
  const auto interrupted = explore(s.crn, initial, cut);
  ASSERT_TRUE(interrupted.cancelled);
  ASSERT_LT(interrupted.size(), reference.size());

  ExploreOptions resume = base;
  resume.checkpoint_path = path;
  resume.resume = true;
  const auto resumed = explore(s.crn, initial, resume);
  EXPECT_FALSE(resumed.cancelled);
  expect_identical(reference, resumed, "fig1/min resumed from root");
  std::remove(path.c_str());
}

TEST(Checkpoint, ResumeMidRunConvergesBitIdentical) {
  // A bigger graph (Theorem 5.2 circuit, ~18.5k configs) checkpointed at
  // every level: resuming from whatever the last level boundary was must
  // still converge to the bit-identical graph.
  const std::string path = temp_path("ckpt_resume_mid");
  compile::ObliviousSpec spec{fn::examples::fig7(), 1,
                              fn::examples::fig7_extensions(), {}};
  const crn::Crn circuit = compile::compile_theorem52(spec);
  const crn::Config initial = circuit.initial_configuration({2, 2});

  ExploreOptions base;
  base.max_configs = 2'000'000;
  base.threads = 1;
  const auto reference = explore(circuit, initial, base);
  ASSERT_TRUE(reference.complete);

  // Deadline interruption: wherever the 20ms token stops it (even not at
  // all — then the checkpoint is just the last periodic one), the resumed
  // graph must match the reference exactly.
  util::CancelToken deadline(20);
  ExploreOptions cut = base;
  cut.cancel = &deadline;
  cut.checkpoint_path = path;
  cut.checkpoint_every_secs = 0.0;  // snapshot at every level boundary
  (void)explore(circuit, initial, cut);

  ExploreOptions resume = base;
  resume.checkpoint_path = path;
  resume.resume = true;
  const auto resumed = explore(circuit, initial, resume);
  expect_identical(reference, resumed, "thm52(2,2) resumed mid-run");
  std::remove(path.c_str());
}

TEST(Checkpoint, MismatchedCheckpointIsIgnored) {
  // A checkpoint of a *different* exploration (other budget) must be
  // rejected at resume: the explorer starts from scratch and still
  // produces the reference graph rather than adopting foreign state.
  const std::string path = temp_path("ckpt_mismatch");
  const scenario::Scenario s =
      scenario::Registry::builtin().build("fig1/min");
  const crn::Config initial =
      s.crn.initial_configuration(s.verify_points.front());

  util::CancelToken cancelled;
  cancelled.cancel();
  ExploreOptions cut;
  cut.max_configs = 50'000;
  cut.threads = 1;
  cut.cancel = &cancelled;
  cut.checkpoint_path = path;
  (void)explore(s.crn, initial, cut);

  ExploreOptions resume;
  resume.max_configs = 100'000;  // differs from the checkpoint's budget
  resume.threads = 1;
  resume.checkpoint_path = path;
  resume.resume = true;
  const auto resumed = explore(s.crn, initial, resume);
  const auto reference =
      explore(s.crn, initial, ExploreOptions{100'000, /*threads=*/1});
  expect_identical(reference, resumed, "fig1/min mismatched budget");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace crnkit::verify
