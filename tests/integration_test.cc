// End-to-end integration: black box + arrangement -> Section 7 analysis ->
// Theorem 5.2 spec -> output-oblivious CRN -> verified against the black
// box; plus the full population-protocol pipeline (compile -> bimolecular
// -> pair scheduler) and cross-validation of the two verifiers.
#include <gtest/gtest.h>

#include "analysis/eventual_min.h"
#include "compile/oned.h"
#include "compile/primitives.h"
#include "compile/theorem52.h"
#include "crn/bimolecular.h"
#include "crn/checks.h"
#include "fn/examples.h"
#include "fn/properties.h"
#include "sim/population.h"
#include "verify/simcheck.h"
#include "verify/stable.h"

namespace crnkit {
namespace {

using math::Int;

TEST(EndToEnd, Fig7AnalysisToCrn) {
  // The flagship pipeline on the Section 7.1 example.
  analysis::AnalysisInput input{fn::examples::fig7(),
                                fn::examples::fig7_arrangement(), 1, 12};
  const compile::ObliviousSpec spec =
      analysis::make_spec_via_analysis(input);
  const crn::Crn crn = compile::compile_theorem52(spec);
  EXPECT_TRUE(crn::is_output_oblivious(crn));
  const auto result = verify::sim_check_points(
      crn, fn::examples::fig7(),
      {{0, 0}, {1, 1}, {2, 5}, {5, 2}, {6, 6}, {9, 8}});
  EXPECT_TRUE(result.ok) << result.summary();
}

TEST(EndToEnd, Fig4aAnalysisToCrn) {
  analysis::AnalysisInput input{fn::examples::fig4a(),
                                fn::examples::fig4a_arrangement(), 2, 14};
  const compile::ObliviousSpec spec =
      analysis::make_spec_via_analysis(input);
  const crn::Crn crn = compile::compile_theorem52(spec);
  EXPECT_TRUE(crn::is_output_oblivious(crn));
  const auto result = verify::sim_check_points(
      crn, fn::examples::fig4a(),
      {{0, 0}, {1, 2}, {3, 3}, {4, 4}, {6, 9}, {8, 3}},
      verify::SimCheckOptions{2, 8'000'000, 13});
  EXPECT_TRUE(result.ok) << result.summary();
}

TEST(EndToEnd, PopulationProtocolPipeline) {
  // Theorem 3.1 CRN -> bimolecular -> pair scheduler, for floor(3x/2).
  const crn::Crn compiled =
      compile::compile_oned(fn::examples::floor_3x_over_2());
  const crn::Crn bi = crn::to_bimolecular(compiled);
  EXPECT_LE(crn::max_reaction_order(bi), 2);
  for (const Int x : {0, 1, 5, 12}) {
    sim::Rng rng(static_cast<std::uint64_t>(100 + x));
    const auto run =
        sim::run_population(bi, bi.initial_configuration({x}), rng);
    ASSERT_TRUE(run.silent) << "x=" << x;
    EXPECT_EQ(bi.output_count(run.final_config), (3 * x) / 2) << "x=" << x;
  }
}

TEST(EndToEnd, BimolecularPreservesStableComputation) {
  // The reversible-pairing conversion preserves the computed function
  // (checked exhaustively on the higher-order clamp CRN).
  const crn::Crn clamp = compile::clamp_crn(2);  // 3X -> 2X + Y
  const crn::Crn bi = crn::to_bimolecular(clamp);
  const fn::DiscreteFunction expected(
      1, [](const fn::Point& x) { return std::max<Int>(0, x[0] - 2); },
      "clamp2");
  for (Int x = 0; x <= 9; ++x) {
    EXPECT_TRUE(verify::check_stable_computation(bi, {x}, expected(x)).ok)
        << x;
  }
}

TEST(EndToEnd, VerifiersAgreeOnCompiledCrns) {
  // Exhaustive and randomized verdicts must agree where both apply.
  const crn::Crn crn = compile::compile_oned(fn::examples::min_const1());
  for (Int x = 0; x <= 6; ++x) {
    const bool exhaustive =
        verify::check_stable_computation(crn, {x},
                                         fn::examples::min_const1()(x))
            .ok;
    const bool randomized =
        verify::sim_check_point(crn, fn::examples::min_const1(), {x}).ok;
    EXPECT_EQ(exhaustive, randomized) << x;
  }
}

TEST(EndToEnd, ObliviousCompositionTheorem) {
  // Observation 2.2 end-to-end: the Theorem 3.1 CRN for floor(3x/2)
  // composed (by concatenation) with the Theorem 3.1 CRN for min(3, x).
  const crn::Crn upstream =
      compile::compile_oned(fn::examples::floor_3x_over_2());
  const fn::DiscreteFunction g(
      1, [](const fn::Point& x) { return std::min<Int>(3, x[0]); },
      "min3");
  const crn::Crn downstream = compile::compile_oned(g);
  const crn::Crn composed = crn::concatenate(upstream, downstream, "g.f");
  const fn::DiscreteFunction expected(
      1,
      [](const fn::Point& x) { return std::min<Int>(3, (3 * x[0]) / 2); },
      "min3.floor32");
  for (Int x = 0; x <= 8; ++x) {
    EXPECT_TRUE(
        verify::check_stable_computation(composed, {x}, expected(x)).ok)
        << x;
  }
}

TEST(EndToEnd, HardcodedRestrictionMatchesRestrictedFunction) {
  // Observation 5.3 executable: pin x1 = 2 in the min CRN and check it
  // computes min(2, x2) as a function of the remaining input.
  const crn::Crn pinned =
      crn::hardcode_input(compile::min_crn(2), 0, 2);
  const fn::DiscreteFunction expected(
      2, [](const fn::Point& x) { return std::min<Int>(2, x[1]); },
      "min(2,x2)");
  const auto sweep =
      verify::check_stable_computation_on_grid(pinned, expected, 4);
  EXPECT_TRUE(sweep.all_ok);
}

}  // namespace
}  // namespace crnkit

namespace crnkit {
namespace threedim {

// Full 3D run of the Section 7 pipeline: f = min of the three pairwise
// sums, analyzed over the three tie hyperplane pairs. Exercises determined
// extension fitting and strip handling with 2D determined subspaces —
// beyond the 2D cases the figures cover.
TEST(EndToEnd, ThreeDimensionalAnalysisPipeline) {
  const fn::DiscreteFunction f3(
      3,
      [](const fn::Point& x) {
        return std::min(std::min(x[0] + x[1], x[1] + x[2]), x[0] + x[2]);
      },
      "minpairs3");
  std::vector<geom::ThresholdHyperplane> hps;
  // min switches where the single coordinates compare: x_i vs x_j.
  hps.push_back({{1, 0, -1}, 1});
  hps.push_back({{-1, 0, 1}, 1});
  hps.push_back({{1, -1, 0}, 1});
  hps.push_back({{-1, 1, 0}, 1});
  hps.push_back({{0, 1, -1}, 1});
  hps.push_back({{0, -1, 1}, 1});
  analysis::AnalysisInput input{
      f3, geom::Arrangement(3, std::move(hps)), 1, 7};
  const auto result = analysis::extract_eventual_min(input);
  ASSERT_TRUE(result.ok) << result.summary();
  // The three pairwise-sum gradients must be among the extracted parts.
  int pairwise_found = 0;
  for (const auto& g : result.parts) {
    const auto& grad = g.gradient();
    math::Int ones = 0;
    for (const auto& c : grad) {
      if (c == math::Rational(1)) ++ones;
    }
    if (ones == 2) ++pairwise_found;
  }
  EXPECT_GE(pairwise_found, 3);
  // min of the extracted parts equals f beyond the threshold.
  const fn::MinOfQuiltAffine m(result.parts);
  const fn::Point n(3, result.threshold);
  EXPECT_FALSE(
      fn::find_domination_violation(f3, m.as_function(), n, 5).has_value());
  EXPECT_FALSE(
      fn::find_domination_violation(m.as_function(), f3, n, 5).has_value());
}

}  // namespace threedim
}  // namespace crnkit
