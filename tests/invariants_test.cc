// Tests for stoichiometric conservation laws: exact nullspace computation,
// known invariants of the paper's example CRNs, and preservation along
// stochastic trajectories.
#include <gtest/gtest.h>

#include "compile/oned.h"
#include "compile/primitives.h"
#include "crn/invariants.h"
#include "fn/examples.h"
#include "sim/gillespie.h"

namespace crnkit::crn {
namespace {

using math::Rational;
using math::RatVec;

TEST(Invariants, MinCrnConservesDifferenceAndSums) {
  const Crn min2 = compile::min_crn(2);  // species X1, X2, Y
  // x1 - x2 is conserved.
  EXPECT_TRUE(is_conserved(min2, {Rational(1), Rational(-1), Rational(0)}));
  // x1 + y and x2 + y are conserved.
  EXPECT_TRUE(is_conserved(min2, {Rational(1), Rational(0), Rational(1)}));
  EXPECT_TRUE(is_conserved(min2, {Rational(0), Rational(1), Rational(1)}));
  // Total molecule count is NOT conserved (2 -> 1).
  EXPECT_FALSE(is_conserved(min2, {Rational(1), Rational(1), Rational(1)}));
  // The conservation-law space has dimension 2 (3 species, rank-1 stoich).
  EXPECT_EQ(conservation_laws(min2).size(), 2u);
}

TEST(Invariants, ScaleCrnConservesWeightedMass) {
  const Crn twice = compile::scale_crn(2);  // X -> 2Y
  // 2x + y is conserved.
  EXPECT_TRUE(is_conserved(twice, {Rational(2), Rational(1)}));
  EXPECT_FALSE(is_conserved(twice, {Rational(1), Rational(1)}));
}

TEST(Invariants, Theorem31LeaderTokenIsConserved) {
  // Exactly one of {L, L_i, P_a} exists at all times: the weight vector
  // with 1 on all leader-state species is conserved.
  const Crn crn = compile::compile_oned(fn::examples::floor_3x_over_2());
  RatVec w(crn.species_count(), Rational(0));
  for (const std::string& name : crn.species_table().names()) {
    if (name == "L" || name[0] == 'P' ||
        (name[0] == 'L' && name.size() > 1)) {
      w[static_cast<std::size_t>(crn.species(name))] = Rational(1);
    }
  }
  EXPECT_TRUE(is_conserved(crn, w));
  EXPECT_EQ(invariant_value(w, crn.initial_configuration({5})), Rational(1));
}

TEST(Invariants, NullspaceLawsAreActuallyConserved) {
  for (const Crn& crn :
       {compile::min_crn(3), compile::fig1_max_crn(),
        compile::compile_oned(fn::examples::floor_3x_over_2())}) {
    for (const RatVec& w : conservation_laws(crn)) {
      EXPECT_TRUE(is_conserved(crn, w)) << crn.name();
    }
  }
}

TEST(Invariants, PreservedAlongGillespieTrajectories) {
  const Crn max2 = compile::fig1_max_crn();
  const auto laws = conservation_laws(max2);
  ASSERT_FALSE(laws.empty());
  const Config initial = max2.initial_configuration({7, 4});
  std::vector<Rational> at_start;
  for (const auto& w : laws) at_start.push_back(invariant_value(w, initial));

  sim::Rng rng(5);
  sim::GillespieOptions options;
  options.observer = [&](double, const Config& c) {
    for (std::size_t i = 0; i < laws.size(); ++i) {
      ASSERT_EQ(invariant_value(laws[i], c), at_start[i]);
    }
  };
  (void)sim::simulate_direct(max2, initial, rng, options);
}

TEST(Invariants, StoichiometryMatrixShape) {
  const Crn min2 = compile::min_crn(2);
  const math::Matrix m = stoichiometry_matrix(min2);
  EXPECT_EQ(m.rows(), 1u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.at(0, 0), Rational(-1));
  EXPECT_EQ(m.at(0, 2), Rational(1));
}

}  // namespace
}  // namespace crnkit::crn
