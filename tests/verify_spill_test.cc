// Out-of-core exploration (verify/spill.h): spilled runs must produce
// graphs bit-identical to in-RAM runs at every thread count — eviction
// changes where arena bytes live, never which configurations exist or
// how they are numbered — and disk failures must surface as the typed
// retriable SpillError, never as a wrong or truncated verdict.
#include "verify/spill.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "scenario/registry.h"
#include "scenario/scenario.h"
#include "util/fault_injector.h"
#include "verify/checkpoint.h"
#include "verify/reachability.h"
#include "verify/stable.h"

namespace crnkit::verify {
namespace {

std::string temp_dir(const std::string& stem) {
  return testing::TempDir() + stem + "." + std::to_string(::getpid());
}

/// Tiny pages + a tiny budget force spilling on small graphs: every
/// frozen page is evicted at every level barrier.
ExploreOptions spill_options(const std::string& dir) {
  ExploreOptions options;
  options.spill_dir = dir;
  options.memory_budget_bytes = 4096;
  options.spill_page_bytes = 4096;
  return options;
}

/// Compares a (possibly spilled) graph against an in-RAM baseline.
/// Arena contents are read through collect_column — the documented read
/// path for out-of-core graphs; view() on an evicted page would see the
/// eviction poison.
void expect_identical(const ReachabilityGraph& spilled,
                      const ReachabilityGraph& baseline,
                      const std::string& label) {
  ASSERT_EQ(spilled.size(), baseline.size()) << label;
  ASSERT_EQ(spilled.complete, baseline.complete) << label;
  ASSERT_EQ(spilled.store.width(), baseline.store.width()) << label;
  for (std::size_t s = 0; s < spilled.store.width(); ++s) {
    std::vector<ConfigStore::Count> got;
    std::vector<ConfigStore::Count> want;
    spilled.store.collect_column(s, got);
    baseline.store.collect_column(s, want);
    ASSERT_EQ(got, want) << label << ": arena column " << s << " differs";
  }
  EXPECT_EQ(spilled.succ_off, baseline.succ_off) << label;
  EXPECT_EQ(spilled.succ, baseline.succ) << label;
  EXPECT_EQ(spilled.parent, baseline.parent) << label;
  EXPECT_EQ(spilled.parent_reaction, baseline.parent_reaction) << label;
}

TEST(VerifySpill, SpilledGraphBitIdenticalAcrossThreads) {
  const scenario::Scenario s =
      scenario::Registry::builtin().build("chain/compose-18");
  const crn::Config initial = s.crn.initial_configuration({4});

  ExploreOptions in_ram;
  in_ram.threads = 1;
  const ReachabilityGraph baseline = explore(s.crn, initial, in_ram);
  ASSERT_TRUE(baseline.complete);
  ASSERT_FALSE(baseline.stats.spilled);

  const std::string dir = temp_dir("spill_threads");
  for (const int threads : {1, 2, 8}) {
    ExploreOptions options = spill_options(dir);
    options.threads = threads;
    const ReachabilityGraph graph = explore(s.crn, initial, options);
    EXPECT_TRUE(graph.stats.spilled)
        << "a 4 KiB budget must force spilling";
    EXPECT_GT(graph.stats.spill_segments_written, 0u);
    EXPECT_GT(graph.stats.spill_bytes_written, 0u);
    expect_identical(graph, baseline,
                     "threads=" + std::to_string(threads));
  }
}

TEST(VerifySpill, SpilledVerdictMatchesInRam) {
  const scenario::Scenario s =
      scenario::Registry::builtin().build("chain/compose-18");

  StableCheckOptions in_ram;
  const StableCheckResult want =
      check_stable_computation(s.crn, {5}, 5, in_ram);
  ASSERT_TRUE(want.ok);
  ASSERT_TRUE(want.complete);

  StableCheckOptions options;
  options.spill_dir = temp_dir("spill_verdict");
  options.memory_budget_bytes = 4096;
  options.spill_page_bytes = 4096;
  const StableCheckResult got =
      check_stable_computation(s.crn, {5}, 5, options);
  EXPECT_TRUE(got.explore_stats.spilled);
  EXPECT_EQ(got.ok, want.ok);
  EXPECT_EQ(got.complete, want.complete);
  EXPECT_EQ(got.num_configs, want.num_configs);
  EXPECT_EQ(got.num_edges, want.num_edges);
}

TEST(VerifySpill, CollectColumnMatchesViewsInRam) {
  const scenario::Scenario s =
      scenario::Registry::builtin().build("chain/compose-4");
  const crn::Config initial = s.crn.initial_configuration({3});
  const ReachabilityGraph graph = explore(s.crn, initial, {});
  ASSERT_GT(graph.size(), 0u);
  for (std::size_t sp = 0; sp < graph.store.width(); ++sp) {
    std::vector<ConfigStore::Count> column;
    graph.store.collect_column(sp, column);
    ASSERT_EQ(column.size(), graph.size());
    for (std::size_t node = 0; node < graph.size(); ++node) {
      ASSERT_EQ(column[node],
                graph.view(static_cast<int>(node))[sp])
          << "species " << sp << " node " << node;
    }
  }
}

TEST(VerifySpill, DiskFullShedsTypedRetriableError) {
  const scenario::Scenario s =
      scenario::Registry::builtin().build("chain/compose-18");
  const crn::Config initial = s.crn.initial_configuration({4});

  // Every segment write dies with a short write (disk full): the
  // exploration must shed with SpillError, not truncate or crash.
  auto& fi = util::FaultInjector::instance();
  fi.configure("spill.write.short_write=always:arg=16");
  EXPECT_THROW(
      {
        const auto graph =
            explore(s.crn, initial, spill_options(temp_dir("spill_enospc")));
        (void)graph;
      },
      SpillError);
  fi.reset();

  // And with the failpoint disarmed the same exploration completes.
  const auto graph =
      explore(s.crn, initial, spill_options(temp_dir("spill_after")));
  EXPECT_TRUE(graph.complete);
  EXPECT_TRUE(graph.stats.spilled);
}

TEST(VerifySpill, ReadFailureDiscardsExplorationWhole) {
  const scenario::Scenario s =
      scenario::Registry::builtin().build("chain/compose-18");
  const crn::Config initial = s.crn.initial_configuration({4});

  // Segment reads fail (torn file, I/O error). Fault-backs during the
  // BFS are rare (hash-tag collisions), so drive the read path
  // deterministically through the verdict passes: explore spilled, then
  // arm the failpoint and stream the columns.
  const ReachabilityGraph graph =
      explore(s.crn, initial, spill_options(temp_dir("spill_read")));
  ASSERT_TRUE(graph.stats.spilled);
  ASSERT_TRUE(graph.spill != nullptr);

  auto& fi = util::FaultInjector::instance();
  fi.configure("spill.read=always");
  std::vector<ConfigStore::Count> column;
  EXPECT_THROW(graph.store.collect_column(0, column), SpillError);
  fi.reset();

  // Disarmed, the same graph streams cleanly.
  graph.store.collect_column(0, column);
  EXPECT_EQ(column.size(), graph.size());
}

TEST(VerifySpill, CheckpointResumeBitIdenticalUnderSpill) {
  const scenario::Scenario s =
      scenario::Registry::builtin().build("chain/compose-18");
  const crn::Config initial = s.crn.initial_configuration({4});
  const std::string ckpt = temp_dir("spill_ckpt") + ".ckpt";

  ExploreOptions fresh = spill_options(temp_dir("spill_ckpt_fresh"));
  const ReachabilityGraph want = explore(s.crn, initial, fresh);
  ASSERT_TRUE(want.complete);

  // Cancelled spilled run saves a checkpoint whose arena bytes came back
  // through the spill segments (not the poisoned resident pages)...
  util::CancelToken cancelled;
  cancelled.cancel();
  ExploreOptions interrupted = spill_options(temp_dir("spill_ckpt_a"));
  interrupted.cancel = &cancelled;
  interrupted.checkpoint_path = ckpt;
  interrupted.checkpoint_every_secs = 0.0;
  const ReachabilityGraph partial = explore(s.crn, initial, interrupted);
  EXPECT_TRUE(partial.cancelled);

  // ... and resuming from it (still spilling, still snapshotting at
  // every level — each save streams evicted pages back through their
  // segments) converges bit-identically.
  ExploreOptions resumed = spill_options(temp_dir("spill_ckpt_b"));
  resumed.checkpoint_path = ckpt;
  resumed.checkpoint_every_secs = 0.0;
  resumed.resume = true;
  const ReachabilityGraph got = explore(s.crn, initial, resumed);
  EXPECT_TRUE(got.stats.spilled);
  expect_identical(got, want, "resumed-after-cancel");
  std::remove(ckpt.c_str());
}

}  // namespace
}  // namespace crnkit::verify
