// util::FaultInjector — the failpoint grammar and trigger semantics the
// chaos/crash harnesses (tools/chaos_replay, tools/crash_durability) rely
// on. These tests use a local injector instance, never the process-wide
// singleton, so nothing here can arm faults for other tests.
#include "util/fault_injector.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace crnkit::util {
namespace {

TEST(FaultInjector, UnarmedNeverFires) {
  FaultInjector fi;
  EXPECT_FALSE(fi.armed());
  EXPECT_FALSE(fi.fires("cache.save.crash"));
  EXPECT_FALSE(fi.fires_at("cache.save.crash", 1'000'000));
  EXPECT_EQ(fi.arg("cache.save.crash", 42), 42);
}

TEST(FaultInjector, AlwaysTrigger) {
  FaultInjector fi;
  fi.configure("server.read.reset=always");
  EXPECT_TRUE(fi.armed());
  EXPECT_TRUE(fi.fires("server.read.reset"));
  EXPECT_TRUE(fi.fires("server.read.reset"));
  // Other sites are untouched.
  EXPECT_FALSE(fi.fires("server.write.reset"));
}

TEST(FaultInjector, OnceFiresOnTheNthHitOnly) {
  FaultInjector fi;
  fi.configure("cache.save.crash=once:3");
  EXPECT_FALSE(fi.fires("cache.save.crash"));  // hit 1
  EXPECT_FALSE(fi.fires("cache.save.crash"));  // hit 2
  EXPECT_TRUE(fi.fires("cache.save.crash"));   // hit 3
  EXPECT_FALSE(fi.fires("cache.save.crash"));  // hit 4 — once means once
}

TEST(FaultInjector, EveryFiresPeriodically) {
  FaultInjector fi;
  fi.configure("server.accept=every:3");
  int fired = 0;
  for (int i = 0; i < 9; ++i) {
    if (fi.fires("server.accept")) ++fired;
  }
  EXPECT_EQ(fired, 3);
}

TEST(FaultInjector, ProbIsSeededAndBounded) {
  FaultInjector fi;
  fi.configure("server.dispatch.delay=prob:0.5:7");
  int fired = 0;
  for (int i = 0; i < 1000; ++i) {
    if (fi.fires("server.dispatch.delay")) ++fired;
  }
  // Seeded PRNG: same spec, same sequence — the exact count is stable,
  // but the test only pins the statistically-safe envelope.
  EXPECT_GT(fired, 350);
  EXPECT_LT(fired, 650);

  // prob:0 never fires, prob:1 always fires.
  FaultInjector never;
  never.configure("x=prob:0.0");
  FaultInjector always;
  always.configure("x=prob:1.0");
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(never.fires("x"));
    EXPECT_TRUE(always.fires("x"));
  }
}

TEST(FaultInjector, AtTriggersOnByteOffset) {
  FaultInjector fi;
  fi.configure("checkpoint.save.crash=at:4096");
  EXPECT_FALSE(fi.fires_at("checkpoint.save.crash", 0));
  EXPECT_FALSE(fi.fires_at("checkpoint.save.crash", 4095));
  EXPECT_TRUE(fi.fires_at("checkpoint.save.crash", 4096));
  // Plain fires() never sees an offset, so an at: trigger stays silent.
  EXPECT_FALSE(fi.fires("checkpoint.save.crash"));
}

TEST(FaultInjector, ArgRidesAlongAnyTrigger) {
  FaultInjector fi;
  fi.configure("server.dispatch.delay=always:arg=25,x=every:2:arg=-3");
  EXPECT_EQ(fi.arg("server.dispatch.delay"), 25);
  EXPECT_EQ(fi.arg("x", 99), -3);
  EXPECT_EQ(fi.arg("unarmed.site", 7), 7);
}

TEST(FaultInjector, StatsCountHitsAndFires) {
  FaultInjector fi;
  fi.configure("a=every:2");
  for (int i = 0; i < 6; ++i) (void)fi.fires("a");
  const auto stats = fi.stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].site, "a");
  EXPECT_EQ(stats[0].hits, 6u);
  EXPECT_EQ(stats[0].fired, 3u);
}

TEST(FaultInjector, ConfigureReplacesAndResetDisarms) {
  FaultInjector fi;
  fi.configure("a=always");
  EXPECT_TRUE(fi.fires("a"));
  // Re-configuring the same site replaces its trigger.
  fi.configure("a=once:100");
  EXPECT_FALSE(fi.fires("a"));
  fi.reset();
  EXPECT_FALSE(fi.armed());
  EXPECT_FALSE(fi.fires("a"));
  EXPECT_TRUE(fi.stats().empty());
}

TEST(FaultInjector, EmptySpecIsANoOp) {
  FaultInjector fi;
  fi.configure("");
  EXPECT_FALSE(fi.armed());
}

TEST(FaultInjector, MalformedSpecsThrow) {
  FaultInjector fi;
  EXPECT_THROW(fi.configure("no-equals-sign"), std::invalid_argument);
  EXPECT_THROW(fi.configure("site=bogus-trigger"), std::invalid_argument);
  EXPECT_THROW(fi.configure("site=once"), std::invalid_argument);
  EXPECT_THROW(fi.configure("site=every:0"), std::invalid_argument);
  EXPECT_THROW(fi.configure("site=prob:2.0"), std::invalid_argument);
  EXPECT_THROW(fi.configure("site=at:"), std::invalid_argument);
  EXPECT_THROW(fi.configure("=always"), std::invalid_argument);
  // A throwing configure must not leave half a spec armed.
  EXPECT_FALSE(fi.armed());
}

}  // namespace
}  // namespace crnkit::util
