// Tests for the persistent work-stealing task pool: exactly-once index
// coverage at every thread count, chunk/grain arithmetic, exception
// propagation (lowest failing chunk wins, like the serial loop), inline
// fallbacks (nested calls, max_threads <= 1), persistent-worker reuse, and
// monotonic utilization counters.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/task_pool.h"

namespace crnkit::util {
namespace {

TEST(TaskPool, CoversEveryIndexExactlyOnce) {
  TaskPool& pool = TaskPool::instance();
  for (const int threads : {1, 2, 3, 8}) {
    for (const std::size_t n : {std::size_t{1}, std::size_t{7},
                                std::size_t{64}, std::size_t{1000}}) {
      for (const std::size_t grain : {std::size_t{1}, std::size_t{3},
                                      std::size_t{64}, std::size_t{5000}}) {
        std::vector<std::atomic<int>> hits(n);
        for (auto& h : hits) h.store(0);
        pool.parallel_for(
            n, grain, [&](std::size_t i) { hits[i].fetch_add(1); }, threads);
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(hits[i].load(), 1)
              << "i=" << i << " n=" << n << " grain=" << grain
              << " threads=" << threads;
        }
      }
    }
  }
}

TEST(TaskPool, ResultsKeyedByIndexAreIdenticalAcrossThreadCounts) {
  // The determinism contract consumers rely on: outputs written to slot i
  // depend only on i, so the assembled result is bit-identical no matter
  // how chunks land on workers.
  TaskPool& pool = TaskPool::instance();
  const std::size_t n = 512;
  std::vector<std::uint64_t> reference(n);
  pool.parallel_for(
      n, 16, [&](std::size_t i) { reference[i] = i * 2654435761u + 17; }, 1);
  for (const int threads : {2, 3, 8}) {
    std::vector<std::uint64_t> out(n, 0);
    pool.parallel_for(
        n, 16, [&](std::size_t i) { out[i] = i * 2654435761u + 17; },
        threads);
    EXPECT_EQ(out, reference) << "threads=" << threads;
  }
}

TEST(TaskPool, ZeroIterationsIsANoOp) {
  std::atomic<int> calls{0};
  TaskPool::instance().parallel_for(
      0, 1, [&](std::size_t) { calls.fetch_add(1); }, 8);
  EXPECT_EQ(calls.load(), 0);
}

TEST(TaskPool, LowestFailingChunkExceptionWins) {
  TaskPool& pool = TaskPool::instance();
  for (const int threads : {1, 4, 8}) {
    try {
      pool.parallel_for(
          100, 10,
          [&](std::size_t i) {
            if (i >= 30) {
              throw std::runtime_error("boom at " + std::to_string(i / 10));
            }
          },
          threads);
      FAIL() << "expected throw, threads=" << threads;
    } catch (const std::runtime_error& e) {
      // Chunks 3..9 all throw; the serial-equivalent error is chunk 3's.
      EXPECT_EQ(std::string(e.what()), "boom at 3") << "threads=" << threads;
    }
    // The pool survives a throwing job and keeps scheduling.
    std::atomic<int> ok{0};
    pool.parallel_for(
        8, 1, [&](std::size_t) { ok.fetch_add(1); }, threads);
    EXPECT_EQ(ok.load(), 8);
  }
}

TEST(TaskPool, NestedCallsRunInline) {
  TaskPool& pool = TaskPool::instance();
  std::vector<std::atomic<int>> hits(64);
  for (auto& h : hits) h.store(0);
  pool.parallel_for(
      8, 1,
      [&](std::size_t outer) {
        // A nested parallel_for inside a task must not deadlock against
        // the single-job pool; it runs inline on this thread.
        pool.parallel_for(
            8, 1,
            [&](std::size_t inner) { hits[outer * 8 + inner].fetch_add(1); },
            8);
      },
      4);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "slot " << i;
  }
}

TEST(TaskPool, WorkersPersistAcrossJobs) {
  TaskPool& pool = TaskPool::instance();
  std::atomic<int> sink{0};
  pool.parallel_for(
      64, 1, [&](std::size_t) { sink.fetch_add(1); }, 4);
  const int workers_after_first = pool.worker_count();
  EXPECT_GE(workers_after_first, 3);
  const TaskPool::Counters before = pool.counters();
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(
        64, 1, [&](std::size_t) { sink.fetch_add(1); }, 4);
  }
  // Reuse, not respawn: the worker count is unchanged after 50 more jobs.
  EXPECT_EQ(pool.worker_count(), workers_after_first);
  const TaskPool::Counters after = pool.counters();
  EXPECT_GE(after.jobs, before.jobs + 50);
  EXPECT_GE(after.tasks, before.tasks + 50 * 64);
}

TEST(TaskPool, CountersAreMonotonic) {
  TaskPool& pool = TaskPool::instance();
  const TaskPool::Counters a = pool.counters();
  std::atomic<std::uint64_t> sum{0};
  pool.parallel_for(
      256, 8, [&](std::size_t i) { sum.fetch_add(i); }, 8);
  const TaskPool::Counters b = pool.counters();
  EXPECT_EQ(sum.load(), 255u * 256u / 2);
  EXPECT_GE(b.jobs, a.jobs);
  EXPECT_GE(b.tasks, a.tasks + 32);  // 256/8 chunks
  EXPECT_GE(b.steals, a.steals);
  EXPECT_GE(b.parks, a.parks);
}

TEST(TaskPool, MaxThreadsOneRunsOnCallingThread) {
  const std::thread::id self = std::this_thread::get_id();
  TaskPool::instance().parallel_for(
      32, 4,
      [&](std::size_t) { EXPECT_EQ(std::this_thread::get_id(), self); }, 1);
}

TEST(TaskPool, StressManySmallJobs) {
  // The simcheck/compose pattern that motivated the pool: hundreds of
  // tiny batches in a row. This is a scheduling smoke test (no lost
  // wakeups, no deadlocks), not a throughput assertion.
  TaskPool& pool = TaskPool::instance();
  std::uint64_t total = 0;
  for (int round = 0; round < 300; ++round) {
    std::vector<std::uint64_t> out(17, 0);
    pool.parallel_for(
        out.size(), 2, [&](std::size_t i) { out[i] = i + 1; },
        1 + round % 8);
    total += std::accumulate(out.begin(), out.end(), std::uint64_t{0});
  }
  EXPECT_EQ(total, 300u * (17u * 18u / 2));
}

}  // namespace
}  // namespace crnkit::util
