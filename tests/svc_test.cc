// Tests for the svc layer: the Service entry point behind the CLI and the
// daemon, and its content-addressed proof cache — hit accounting,
// bit-identical cached verdicts, the budget-rejection rule (a truncated
// proof is never served for a larger budget), LRU eviction, on-disk
// persistence with corruption rejection, witness replay, and concurrent
// mixed traffic against one shared service.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "crn/network.h"
#include "crn/passes.h"
#include "obs/metrics.h"
#include "svc/proof_cache.h"
#include "svc/serialize.h"
#include "svc/server.h"
#include "svc/service.h"
#include "svc/workload.h"

namespace crnkit::svc {
namespace {

VerifyRequest min_request() {
  VerifyRequest req;
  req.target = "fig1/min";
  return req;
}

void expect_same_verdicts(const VerifyResponse& a, const VerifyResponse& b) {
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.proved, b.proved);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.inconclusive, b.inconclusive);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].x, b.points[i].x) << i;
    EXPECT_EQ(a.points[i].expected, b.points[i].expected) << i;
    EXPECT_EQ(a.points[i].ok, b.points[i].ok) << i;
    EXPECT_EQ(a.points[i].complete, b.points[i].complete) << i;
    EXPECT_EQ(a.points[i].configs, b.points[i].configs) << i;
    EXPECT_EQ(a.points[i].edges, b.points[i].edges) << i;
    EXPECT_EQ(a.points[i].status, b.points[i].status) << i;
    EXPECT_EQ(a.points[i].witness, b.points[i].witness) << i;
  }
}

TEST(Service, VerifyCachesRepeatedRequests) {
  Service service;
  const VerifyResponse cold = service.verify(min_request());
  EXPECT_TRUE(cold.ok);
  EXPECT_EQ(cold.cache_hits, 0u);
  EXPECT_EQ(cold.cache_misses, cold.points.size());
  for (const VerifyPointReport& p : cold.points) EXPECT_FALSE(p.cached);

  const VerifyResponse warm = service.verify(min_request());
  EXPECT_EQ(warm.cache_hits, warm.points.size());
  EXPECT_EQ(warm.cache_misses, 0u);
  for (const VerifyPointReport& p : warm.points) EXPECT_TRUE(p.cached);
  expect_same_verdicts(cold, warm);
}

TEST(Service, CacheIsKeyedByCanonicalFormNotByNames) {
  // The same network as a renamed .crn file must hit the entries the
  // registry scenario populated.
  Service service;
  VerifyRequest point = min_request();
  point.input = "2,3";
  point.expect = "2";
  const VerifyResponse cold = service.verify(point);
  EXPECT_EQ(cold.cache_misses, 1u);

  const std::string path = testing::TempDir() + "svc_renamed_min.crn";
  {
    std::ofstream file(path, std::ios::trunc);
    file << "crn renamed-min\ninputs B A\noutput Q\nrxn B + A -> Q\n";
  }
  VerifyRequest renamed;
  renamed.target = path;
  renamed.input = "2,3";
  renamed.expect = "2";
  const VerifyResponse warm = service.verify(renamed);
  EXPECT_EQ(warm.cache_hits, 1u);
  EXPECT_EQ(warm.cache_misses, 0u);
  expect_same_verdicts(cold, warm);
  std::remove(path.c_str());
}

TEST(Service, NoCacheFlagBypassesTheCache) {
  Service service;
  (void)service.verify(min_request());
  VerifyRequest req = min_request();
  req.use_cache = false;
  const VerifyResponse fresh = service.verify(req);
  EXPECT_EQ(fresh.cache_hits, 0u);
  EXPECT_EQ(fresh.cache_misses, 0u);
  for (const VerifyPointReport& p : fresh.points) EXPECT_FALSE(p.cached);
}

// The budget-rejection regression test (issue satellite): a verdict from a
// truncated exploration is keyed by its exact budget and must never be
// served for a larger budget, which could complete the exploration and
// flip inconclusive into proved (or FAILED).
TEST(Service, TruncatedVerdictIsNeverServedForLargerBudget) {
  Service service;
  VerifyRequest tiny = min_request();
  tiny.input = "3,3";
  tiny.expect = "3";
  tiny.max_configs = 2;
  const VerifyResponse truncated = service.verify(tiny);
  ASSERT_EQ(truncated.points.size(), 1u);
  EXPECT_FALSE(truncated.points[0].complete);
  EXPECT_EQ(truncated.points[0].status, "inconclusive");
  EXPECT_EQ(truncated.cache_misses, 1u);

  // Same point, bigger budget: the truncated entry must not answer it.
  VerifyRequest full = tiny;
  full.max_configs = 200000;
  const VerifyResponse proved = service.verify(full);
  ASSERT_EQ(proved.points.size(), 1u);
  EXPECT_EQ(proved.cache_hits, 0u);
  EXPECT_EQ(proved.cache_misses, 1u);
  EXPECT_TRUE(proved.points[0].complete);
  EXPECT_EQ(proved.points[0].status, "proved");

  // The truncated entry still answers its exact budget...
  const VerifyResponse truncated_again = service.verify(tiny);
  EXPECT_EQ(truncated_again.cache_hits, 1u);
  EXPECT_EQ(truncated_again.points[0].status, "inconclusive");

  // ...and the complete verdict answers any budget that could have
  // completed the same exploration, including larger ones.
  VerifyRequest larger = tiny;
  larger.max_configs = 500000;
  const VerifyResponse served = service.verify(larger);
  EXPECT_EQ(served.cache_hits, 1u);
  EXPECT_EQ(served.points[0].status, "proved");

  // A budget below the explored size must not reuse the complete verdict:
  // that exploration would have been truncated.
  VerifyRequest below = tiny;
  below.max_configs = proved.points[0].configs - 1;
  const VerifyResponse retried = service.verify(below);
  EXPECT_EQ(retried.cache_hits, 0u);
  EXPECT_FALSE(retried.points[0].complete);
}

TEST(Service, FailedVerdictCarriesReplayableWitness) {
  Service service;
  VerifyRequest req;
  req.target = "fig1/2max-broken";
  req.input = "1,2";
  req.expect = "4";
  req.force = true;
  const VerifyResponse resp = service.verify(req);
  ASSERT_EQ(resp.points.size(), 1u);
  ASSERT_EQ(resp.points[0].status, "FAILED");
  ASSERT_FALSE(resp.points[0].witness.empty());

  // Replay the witness from I_x: every reaction along the path must be
  // applicable — the cached path is a checkable certificate, not a claim.
  const crn::Crn network = load_workload("fig1/2max-broken").scenario.crn;
  crn::Config config = network.initial_configuration({1, 2});
  for (const int r : resp.points[0].witness) {
    ASSERT_GE(r, 0);
    ASSERT_LT(static_cast<std::size_t>(r), network.reactions().size());
    const crn::Reaction& reaction =
        network.reactions()[static_cast<std::size_t>(r)];
    ASSERT_TRUE(reaction.applicable(config));
    reaction.apply_in_place(config);
  }

  // The witness survives the cache round-trip bit-identically.
  const VerifyResponse cached = service.verify(req);
  EXPECT_EQ(cached.cache_hits, 1u);
  EXPECT_EQ(cached.points[0].witness, resp.points[0].witness);
}

TEST(ProofCache, CompleteSlotServesOnlySufficientBudgets) {
  ProofCache cache;
  ProofKey key;
  key.crn_hash = 0xabcdef;
  key.x = {3, 3};
  key.expected = 3;

  ProofVerdict complete;
  complete.ok = true;
  complete.complete = true;
  complete.budget = 1000;
  complete.num_configs = 40;
  cache.insert(key, complete);

  EXPECT_TRUE(cache.lookup(key, 40).has_value());
  EXPECT_TRUE(cache.lookup(key, 100000).has_value());
  EXPECT_FALSE(cache.lookup(key, 39).has_value());

  ProofVerdict truncated;
  truncated.ok = false;
  truncated.complete = false;
  truncated.budget = 10;
  truncated.num_configs = 10;
  cache.insert(key, truncated);
  const auto hit = cache.lookup(key, 10);
  ASSERT_TRUE(hit.has_value());
  EXPECT_FALSE(hit->complete);
  // The truncated slot never answers any other budget (11 falls back to
  // the complete slot only once the budget could cover it).
  EXPECT_FALSE(cache.lookup(key, 11).has_value());
}

TEST(ProofCache, EvictsLeastRecentlyUsedUnderByteBudget) {
  ProofCache::Options options;
  options.max_bytes = 1024;  // room for a few entries, nowhere near eight
  ProofCache cache(options);
  const auto key_for = [](std::uint64_t i) {
    ProofKey key;
    key.crn_hash = i;
    key.expected = 1;
    return key;
  };
  ProofVerdict verdict;
  verdict.complete = true;
  verdict.num_configs = 1;
  for (std::uint64_t i = 0; i < 8; ++i) cache.insert(key_for(i), verdict);

  const ProofCache::Stats stats = cache.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.bytes, options.max_bytes);
  // The oldest keys are gone, the newest survive.
  EXPECT_FALSE(cache.lookup(key_for(0), 10).has_value());
  EXPECT_TRUE(cache.lookup(key_for(7), 10).has_value());
}

TEST(ProofCache, ZeroByteBudgetDisablesCaching) {
  ProofCache::Options options;
  options.max_bytes = 0;
  ProofCache cache(options);
  ProofKey key;
  key.crn_hash = 1;
  ProofVerdict verdict;
  verdict.complete = true;
  cache.insert(key, verdict);
  EXPECT_FALSE(cache.lookup(key, 100).has_value());
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ProofCache, PersistenceRoundTripsThroughService) {
  const std::string path = testing::TempDir() + "svc_proof_cache.json";
  VerifyResponse cold;
  {
    Service service;
    cold = service.verify(min_request());
    service.proof_cache().save(path);
  }
  Service service;
  EXPECT_EQ(service.proof_cache().load(path), cold.points.size());
  const VerifyResponse warm = service.verify(min_request());
  EXPECT_EQ(warm.cache_hits, warm.points.size());
  EXPECT_EQ(warm.cache_misses, 0u);
  expect_same_verdicts(cold, warm);
  std::remove(path.c_str());
}

TEST(ProofCache, LoadRejectsTamperedAndMalformedFiles) {
  const std::string path = testing::TempDir() + "svc_proof_tampered.json";
  {
    Service service;
    (void)service.verify(min_request());
    service.proof_cache().save(path);
  }
  std::string text;
  {
    std::ifstream file(path);
    std::ostringstream contents;
    contents << file.rdbuf();
    text = contents.str();
  }

  const auto write_and_expect_reject = [&](const std::string& contents) {
    std::ofstream file(path, std::ios::trunc);
    file << contents;
    file.close();
    ProofCache cache;
    EXPECT_THROW((void)cache.load(path), std::runtime_error);
    EXPECT_EQ(cache.stats().entries, 0u);
  };

  // Flipping one verdict bit breaks the content checksum.
  const auto ok_pos = text.find("\"ok\": true");
  ASSERT_NE(ok_pos, std::string::npos);
  std::string tampered = text;
  tampered.replace(ok_pos, 10, "\"ok\": false");
  write_and_expect_reject(tampered);

  // A future schema version is refused rather than misread.
  const auto version_pos = text.find("\"schema_version\": 2");
  ASSERT_NE(version_pos, std::string::npos);
  std::string future = text;
  future.replace(version_pos, 19, "\"schema_version\": 99");
  write_and_expect_reject(future);

  // A wrong format marker and plain garbage are refused too.
  std::string wrong_format = text;
  const auto format_pos = wrong_format.find("crnkit-proof-cache");
  ASSERT_NE(format_pos, std::string::npos);
  wrong_format.replace(format_pos, 18, "crnkit-prof-cache!");
  write_and_expect_reject(wrong_format);
  write_and_expect_reject("not json at all");

  std::remove(path.c_str());
}

TEST(ProofCache, JournalReplaysInsertsAndKeepsTheValidPrefix) {
  const std::string path = testing::TempDir() + "svc_proof_journal.jsonl";
  std::remove(path.c_str());

  const auto make_key = [](std::uint64_t tag) {
    ProofKey key;
    key.crn_hash = tag;
    key.x = {3, 4};
    key.expected = 7;
    return key;
  };
  ProofVerdict verdict;
  verdict.ok = false;
  verdict.complete = true;
  verdict.budget = 500;
  verdict.num_configs = 123;
  verdict.num_edges = 456;
  verdict.witness = {2, 0, 5};

  {
    ProofCache cache;
    cache.enable_journal(path);
    for (std::uint64_t tag = 1; tag <= 3; ++tag) {
      cache.insert(make_key(tag), verdict);
    }
  }

  // A fresh cache replays all three inserts with verdicts intact.
  ProofCache fresh;
  EXPECT_EQ(fresh.replay_journal(path), 3u);
  const auto replayed = fresh.lookup(make_key(2), 1'000);
  ASSERT_TRUE(replayed.has_value());
  EXPECT_EQ(replayed->num_configs, 123u);
  EXPECT_EQ(replayed->num_edges, 456u);
  EXPECT_TRUE(replayed->complete);
  EXPECT_EQ(replayed->witness, verdict.witness);

  // A torn tail (half a line, as a crash mid-append leaves it) is
  // discarded; the prefix still replays.
  std::string text;
  {
    std::ifstream in(path);
    std::ostringstream contents;
    contents << in.rdbuf();
    text = contents.str();
  }
  {
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out << text.substr(0, text.size() - text.size() / 4);
  }
  ProofCache after_tear;
  EXPECT_EQ(after_tear.replay_journal(path), 2u);

  // A corrupt line stops replay there instead of poisoning the cache.
  {
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out << "{\"entry\": \"garbage\"}\n" << text;
  }
  ProofCache after_corrupt;
  EXPECT_EQ(after_corrupt.replay_journal(path), 0u);

  // No journal file at all is an empty replay, not an error.
  std::remove(path.c_str());
  ProofCache none;
  EXPECT_EQ(none.replay_journal(path), 0u);
}

TEST(ProofCache, SaveTruncatesTheJournal) {
  const std::string journal = testing::TempDir() + "svc_proof_journal2.jsonl";
  const std::string snapshot = testing::TempDir() + "svc_proof_snap.json";
  std::remove(journal.c_str());

  Service service;
  service.proof_cache().enable_journal(journal);
  const VerifyResponse cold = service.verify(min_request());
  ASSERT_GT(cold.points.size(), 0u);

  // Before the snapshot, the journal alone restores every verdict.
  {
    ProofCache replayed;
    EXPECT_EQ(replayed.replay_journal(journal), cold.points.size());
  }

  // After a snapshot the journal is truncated — its entries live in the
  // snapshot now, and startup (load + replay) still sees each exactly once.
  service.proof_cache().save(snapshot);
  ProofCache restored;
  EXPECT_EQ(restored.load(snapshot), cold.points.size());
  EXPECT_EQ(restored.replay_journal(journal), 0u);

  std::remove(journal.c_str());
  std::remove(snapshot.c_str());
}

TEST(Service, ConcurrentMixedRequestsMatchFreshVerdicts) {
  // One shared service, 64 concurrent clients mixing verify and simulate.
  // Every response must be bit-identical to a fresh single-threaded run.
  Service reference_service;
  const VerifyResponse want_verify = reference_service.verify(min_request());
  SimulateRequest sim;
  sim.target = "fig1/twice";
  sim.trajectories = 4;
  sim.seed = 7;
  sim.threads = 1;
  const SimulateResponse want_sim = reference_service.simulate(sim);

  Service service;
  constexpr int kClients = 64;
  std::vector<VerifyResponse> verifies(kClients);
  std::vector<SimulateResponse> simulates(kClients);
  std::vector<char> is_verify(kClients, 0);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    is_verify[static_cast<std::size_t>(i)] = (i % 3) != 2;
    clients.emplace_back([&, i] {
      const auto slot = static_cast<std::size_t>(i);
      if (is_verify[slot]) {
        verifies[slot] = service.verify(min_request());
      } else {
        simulates[slot] = service.simulate(sim);
      }
    });
  }
  for (std::thread& t : clients) t.join();

  for (int i = 0; i < kClients; ++i) {
    const auto slot = static_cast<std::size_t>(i);
    if (is_verify[slot]) {
      expect_same_verdicts(want_verify, verifies[slot]);
    } else {
      EXPECT_EQ(want_sim.output, simulates[slot].output) << i;
      EXPECT_EQ(want_sim.silent, simulates[slot].silent) << i;
      EXPECT_EQ(want_sim.total_events, simulates[slot].total_events) << i;
      EXPECT_EQ(want_sim.ok, simulates[slot].ok) << i;
    }
  }
  // Every verify consulted the cache for every point. Racing cold clients
  // may each compute the same point (there is no request coalescing), so
  // misses can exceed the point count — but the sum is exact.
  const ProofCache::Stats stats = service.proof_cache().stats();
  std::size_t verify_count = 0;
  for (const char v : is_verify) verify_count += v != 0;
  EXPECT_EQ(stats.hits + stats.misses,
            verify_count * want_verify.points.size());
  EXPECT_GE(stats.misses, want_verify.points.size());
}

TEST(Serialize, VerifyResponseRoundTripsSchemaVersion) {
  Service service;
  const std::string json = to_json(service.verify(min_request()));
  const util::JsonValue root = util::JsonValue::parse(json);
  EXPECT_EQ(root.get_int("schema_version", -1), kSchemaVersion);
  EXPECT_EQ(root.get("points").size(),
            static_cast<std::size_t>(root.get_int("proved", -1)));
  EXPECT_TRUE(root.get_bool("ok", false));
}

TEST(Service, AnalyzeOpAnswersOverTheWireWithFindings) {
  // The analyze op through the same line-JSON dispatch the daemon uses:
  // fig1/max must come back statically rejected (consumes-output, with
  // the offending reaction), fig1/min clean, and the full-registry sweep
  // ok (no error findings in verifiable scenarios).
  Service service;
  const std::string max_response = Server::dispatch_line(
      service, R"({"op": "analyze", "target": "fig1/max"})");
  const util::JsonValue max_root = util::JsonValue::parse(max_response);
  EXPECT_EQ(max_root.get_int("schema_version", -1), kSchemaVersion);
  const util::JsonValue& max_report = max_root.get("reports").items().at(0);
  EXPECT_FALSE(max_report.get("composability").get_bool("oblivious", true));
  EXPECT_GE(max_report.get("composability").get_int("offending_reaction", -1),
            0);

  const std::string min_response = Server::dispatch_line(
      service, R"({"op": "analyze", "target": "fig1/min"})");
  const util::JsonValue min_root = util::JsonValue::parse(min_response);
  EXPECT_TRUE(min_root.get("reports")
                  .items()
                  .at(0)
                  .get("composability")
                  .get_bool("oblivious", false));
  EXPECT_TRUE(min_root.get_bool("ok", false));

  const std::string all_response =
      Server::dispatch_line(service, R"({"op": "analyze", "all": true})");
  const util::JsonValue all_root = util::JsonValue::parse(all_response);
  EXPECT_GT(all_root.get("reports").size(), 10u);
  EXPECT_EQ(all_root.get_int("errors", -1), 0);
  EXPECT_TRUE(all_root.get_bool("ok", false));
}

TEST(Service, VerifyStampsInvariantCertificatesIntoCachedVerdicts) {
  // First verify computes the proof and stamps the conservation-law
  // certificates; the cache hit must return the same certificates.
  Service service;
  const VerifyResponse cold = service.verify(min_request());
  ASSERT_TRUE(cold.ok);
  EXPECT_GT(cold.conservation_laws, 0u);
  ASSERT_FALSE(cold.points.empty());
  for (const VerifyPointReport& p : cold.points) {
    EXPECT_FALSE(p.invariants.empty()) << p.x;
  }
  const VerifyResponse warm = service.verify(min_request());
  ASSERT_TRUE(warm.ok);
  ASSERT_EQ(warm.points.size(), cold.points.size());
  for (std::size_t i = 0; i < warm.points.size(); ++i) {
    EXPECT_TRUE(warm.points[i].cached) << i;
    EXPECT_EQ(warm.points[i].invariants, cold.points[i].invariants) << i;
  }
}

TEST(ProofCacheCoalescing, ConcurrentColdMissesRunOneExploration) {
  // 32 threads hammer the same cold verify point concurrently. The
  // single-flight claim (ProofCache::Flight) must coalesce them onto one
  // exploration: the leader records the only miss and the only insert,
  // every follower waits and then hits.
  Service service;
  const std::uint64_t explorations_before =
      obs::Registry::instance()
          .counter("crnkit_verify_explorations_total",
                   "reachability explorations run")
          .value();

  // A workload heavy enough (~1.5M configs) that the leader is still
  // exploring while the other 31 threads arrive and park behind its
  // flight — a trivial point would let the leader finish before the
  // followers even claim, hiding the coalescing path.
  constexpr int kThreads = 32;
  VerifyRequest req;
  req.target = "chain/compose-18";
  req.input = "8";
  std::vector<std::thread> threads;
  std::vector<VerifyResponse> responses(kThreads);
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back(
        [&service, &responses, i, req] { responses[static_cast<std::size_t>(
            i)] = service.verify(req); });
  }
  for (std::thread& t : threads) t.join();
  for (const VerifyResponse& resp : responses) {
    EXPECT_TRUE(resp.ok);
    ASSERT_EQ(resp.points.size(), 1u);
    EXPECT_EQ(resp.points.front().status, "proved");
  }

  const std::uint64_t explorations_after =
      obs::Registry::instance()
          .counter("crnkit_verify_explorations_total",
                   "reachability explorations run")
          .value();
  EXPECT_EQ(explorations_after - explorations_before, 1u)
      << "coalescing must collapse 32 identical cold verifies into "
         "exactly one exploration";

  const ProofCache::Stats stats = service.proof_cache().stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, static_cast<std::uint64_t>(kThreads - 1));
  EXPECT_EQ(stats.insertions, 1u);
  // Every thread that arrived while the leader was exploring waited
  // (coalesced); a thread that arrived after the insert just hits. The
  // exact split is scheduling-dependent, but with a multi-hundred-ms
  // exploration at least one follower must have parked. Exact counting
  // semantics are covered deterministically by FlightBlocksFollowers.
  EXPECT_GE(stats.coalesced, 1u);
}

TEST(ProofCacheCoalescing, FlightBlocksFollowersUntilLeaderReleases) {
  // Deterministic single-flight semantics, directly on the latch: a
  // follower claiming the same (key, budget) parks until the leader's
  // Flight is destroyed, and is counted exactly once; a different budget
  // for the same key is a distinct flight and never waits.
  ProofCache cache;
  ProofKey key;
  key.crn_hash = 0x5eed;
  key.x = {3, 4};
  key.expected = 7;

  auto leader = std::make_unique<ProofCache::Flight>(cache, key, 1000);
  EXPECT_FALSE(leader->coalesced());

  std::atomic<bool> follower_done{false};
  std::thread follower([&] {
    ProofCache::Flight flight(cache, key, 1000);
    EXPECT_TRUE(flight.coalesced());
    follower_done = true;
  });
  // The coalesced count is bumped before the follower parks, so once it
  // reads 1 the follower is committed to waiting on the leader.
  while (cache.stats().coalesced == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_FALSE(follower_done.load());

  // Same key, different budget: a distinct flight, claims immediately.
  {
    ProofCache::Flight other(cache, key, 2000);
    EXPECT_FALSE(other.coalesced());
  }
  EXPECT_FALSE(follower_done.load());

  leader.reset();
  follower.join();
  EXPECT_TRUE(follower_done.load());
  EXPECT_EQ(cache.stats().coalesced, 1u);
}

TEST(ServiceMemoryBudget, ClampCoversAuxArrayOverheads) {
  // Regression for the clamp estimate: the old per-config guess
  // (width*4 + 48) ignored the CSR edges, BFS parents, and frontier
  // bookkeeping entirely, overshooting the budget ~2x. The estimate must
  // now assume at least 100 B of non-arena overhead per config.
  Service::Options options;
  options.memory_budget_bytes = std::size_t{100} << 20;
  Service service(options);
  EXPECT_GE(service.clamp_overhead_per_config(), std::size_t{100});

  bool degraded = false;
  const std::size_t width = 25;
  const std::size_t clamped = service.clamp_to_memory_budget(
      std::size_t{10'000'000}, width, &degraded);
  EXPECT_TRUE(degraded);
  EXPECT_LE(clamped, options.memory_budget_bytes /
                         (width * sizeof(std::int32_t) + 100));

  // After a real exploration the bound tightens to the observed
  // bytes-per-config actuals (never loosens below the static floor).
  VerifyRequest req;
  req.target = "fig1/min";
  const VerifyResponse resp = service.verify(req);
  ASSERT_TRUE(resp.ok);
  EXPECT_GE(service.clamp_overhead_per_config(), std::size_t{100});
  bool degraded_after = false;
  const std::size_t clamped_after = service.clamp_to_memory_budget(
      std::size_t{10'000'000}, width, &degraded_after);
  EXPECT_TRUE(degraded_after);
  EXPECT_LE(clamped_after, clamped);
}

TEST(ServiceSpillLadder, OverBudgetVerifySpillsExactInsteadOfDegrading) {
  // The graceful-degradation ladder: the same over-budget request that
  // clamps to `degraded` without a spill directory stays exact (marked
  // `spilled`) with one, and the two fresh explorations agree with the
  // unconstrained verdict.
  VerifyRequest req;
  req.target = "fig1/min";
  req.input = "4,4";
  req.max_configs = 5'000'000;
  req.use_cache = false;

  Service unconstrained;
  const VerifyResponse want = unconstrained.verify(req);
  ASSERT_TRUE(want.ok);

  Service::Options clamp_only;
  clamp_only.memory_budget_bytes = std::size_t{1} << 20;
  Service degrading(clamp_only);
  const VerifyResponse degraded = degrading.verify(req);
  EXPECT_TRUE(degraded.degraded);
  EXPECT_FALSE(degraded.spilled);
  EXPECT_LT(degraded.max_configs, req.max_configs);

  Service::Options with_spill = clamp_only;
  with_spill.spill_dir = testing::TempDir() + "svc_spill_ladder";
  Service spilling(with_spill);
  const VerifyResponse got = spilling.verify(req);
  EXPECT_FALSE(got.degraded);
  EXPECT_EQ(got.max_configs, req.max_configs)
      << "the spill rung must keep the requested budget";
  EXPECT_TRUE(got.ok);
  ASSERT_EQ(got.points.size(), 1u);
  EXPECT_EQ(got.points.front().status, "proved");
  EXPECT_EQ(got.points.front().configs, want.points.front().configs);
  EXPECT_EQ(got.points.front().edges, want.points.front().edges);
}

}  // namespace
}  // namespace crnkit::svc
