// Tests for composition (Section 2.3): concatenation works when the
// upstream CRN is output-oblivious (Observation 2.2) and demonstrably fails
// when it is not (the paper's 2*max example); plus Circuit mechanics
// (fan-out, sum junctions, leader splitting, cycle rejection).
#include <gtest/gtest.h>

#include "compile/primitives.h"
#include "crn/checks.h"
#include "crn/compose.h"
#include "fn/examples.h"
#include "verify/reachability.h"
#include "verify/simcheck.h"
#include "verify/stable.h"

namespace crnkit::crn {
namespace {

using math::Int;

TEST(Concatenate, TwoTimesMinIsCorrect) {
  // min (output-oblivious) composed with doubling: 2 * min(x1, x2).
  const Crn composed =
      concatenate(compile::min_crn(2), compile::scale_crn(2), "2min");
  EXPECT_TRUE(is_output_oblivious(composed));
  const fn::DiscreteFunction expected(
      2, [](const fn::Point& x) { return 2 * std::min(x[0], x[1]); },
      "2min");
  const auto sweep = verify::check_stable_computation_on_grid(composed,
                                                              expected, 4);
  EXPECT_TRUE(sweep.all_ok);
}

TEST(Concatenate, TwoTimesMaxOverproduces) {
  // The paper's Section 1.2 failure: renaming max's output into the
  // doubler's input can yield up to 2(x1 + x2) outputs. The composed CRN
  // must NOT stably compute 2*max — and overproduction must be reachable.
  const Crn composed =
      concatenate(compile::fig1_max_crn(), compile::scale_crn(2), "2max");
  // Note: the composed CRN is syntactically output-oblivious with respect
  // to its *final* output (the doubler never consumes Y) — what is broken
  // is the upstream consuming the shared intermediate species W. This is
  // exactly why Observation 2.2 conditions on the upstream being
  // output-oblivious, not the composition.
  EXPECT_FALSE(is_output_oblivious(compile::fig1_max_crn()));
  const Int x1 = 2;
  const Int x2 = 3;
  const auto result =
      verify::check_stable_computation(composed, {x1, x2},
                                       2 * std::max(x1, x2));
  EXPECT_FALSE(result.ok);
  ASSERT_TRUE(result.overproduction.has_value());
  EXPECT_GT(composed.output_count(*result.overproduction),
            2 * std::max(x1, x2));
}

TEST(Concatenate, OvershootPathIsConstructible) {
  // Reconstruct an explicit reaction sequence reaching overproduction in
  // the 2*max composition (the executable form of the paper's argument).
  const Crn composed =
      concatenate(compile::fig1_max_crn(), compile::scale_crn(2), "2max");
  const auto graph =
      verify::explore(composed, composed.initial_configuration({2, 3}));
  ASSERT_TRUE(graph.complete);
  const auto over = verify::find_output_exceeding(composed, graph, 6);
  ASSERT_TRUE(over.has_value());
  const auto path = verify::path_from_root(graph, *over);
  EXPECT_FALSE(path.empty());
  // Replaying the path must reproduce the overproducing configuration.
  Config c = composed.initial_configuration({2, 3});
  for (const int r : path) {
    ASSERT_TRUE(composed.reactions()[static_cast<std::size_t>(r)]
                    .applicable(c));
    composed.reactions()[static_cast<std::size_t>(r)].apply_in_place(c);
  }
  EXPECT_EQ(c, graph.config(*over));
}

TEST(Concatenate, ChainsOfObliviousModulesStayOblivious) {
  // (2x) then (3x) then min with itself... simple chain: 6x.
  const Crn chain = concatenate(
      concatenate(compile::scale_crn(2), compile::scale_crn(3), "6x"),
      compile::scale_crn(1), "6x-id");
  EXPECT_TRUE(is_output_oblivious(chain));
  EXPECT_TRUE(verify::check_stable_computation(chain, {5}, 30).ok);
}

TEST(Circuit, FanOutSharesOneInputAcrossModules) {
  // y = min(2x, x) = x via fan-out of the single external input.
  Circuit circuit(1, "fanout-test");
  const int doubler = circuit.add_module(compile::scale_crn(2));
  const int identity = circuit.add_module(compile::identity_crn());
  const int join = circuit.add_module(compile::min_crn(2));
  circuit.connect(Wire::external(0), doubler, 0);
  circuit.connect(Wire::external(0), identity, 0);
  circuit.connect(Wire::of_module(doubler), join, 0);
  circuit.connect(Wire::of_module(identity), join, 1);
  circuit.add_output(Wire::of_module(join));
  const Crn crn = circuit.compile();
  EXPECT_TRUE(is_output_oblivious(crn));
  for (Int x = 0; x <= 6; ++x) {
    EXPECT_TRUE(verify::check_stable_computation(crn, {x}, x).ok) << x;
  }
}

TEST(Circuit, SumJunctionAddsTwoModules) {
  // y = 2x + x = 3x by declaring two output wires.
  Circuit circuit(1, "sum-test");
  const int doubler = circuit.add_module(compile::scale_crn(2));
  const int identity = circuit.add_module(compile::identity_crn());
  circuit.connect(Wire::external(0), doubler, 0);
  circuit.connect(Wire::external(0), identity, 0);
  circuit.add_output(Wire::of_module(doubler));
  circuit.add_output(Wire::of_module(identity));
  const Crn crn = circuit.compile();
  for (Int x = 0; x <= 5; ++x) {
    EXPECT_TRUE(verify::check_stable_computation(crn, {x}, 3 * x).ok) << x;
  }
}

TEST(Circuit, LeaderSplitsOnlyWhenModulesNeedIt) {
  // Pure min circuit: no module has a leader -> no leader in the result.
  Circuit no_leader(2, "no-leader");
  const int join = no_leader.add_module(compile::min_crn(2));
  no_leader.connect(Wire::external(0), join, 0);
  no_leader.connect(Wire::external(1), join, 1);
  no_leader.add_output(Wire::of_module(join));
  EXPECT_FALSE(no_leader.compile().leader().has_value());

  // Adding a constant module (leader-seeded) forces a top leader.
  Circuit with_leader(2, "with-leader");
  const int join2 = with_leader.add_module(compile::min_crn(2));
  const int constant = with_leader.add_module(compile::constant_crn(3));
  with_leader.connect(Wire::external(0), join2, 0);
  with_leader.connect(Wire::external(1), join2, 1);
  with_leader.add_output(Wire::of_module(join2));
  with_leader.add_output(Wire::of_module(constant));
  const Crn crn = with_leader.compile();
  ASSERT_TRUE(crn.leader().has_value());
  // min(x1,x2) + 3.
  EXPECT_TRUE(verify::check_stable_computation(crn, {2, 5}, 5).ok);
}

TEST(Circuit, RejectsNonObliviousModules) {
  Circuit circuit(2, "bad");
  EXPECT_THROW((void)circuit.add_module(compile::fig1_max_crn()),
               std::logic_error);
}

TEST(Circuit, RejectsUnconnectedPorts) {
  Circuit circuit(2, "unconnected");
  (void)circuit.add_module(compile::min_crn(2));
  circuit.connect(Wire::external(0), 0, 0);
  circuit.add_output(Wire::of_module(0));
  EXPECT_THROW((void)circuit.compile(), std::invalid_argument);
}

TEST(Circuit, RejectsDoubleConnection) {
  Circuit circuit(2, "double");
  (void)circuit.add_module(compile::min_crn(2));
  circuit.connect(Wire::external(0), 0, 0);
  circuit.connect(Wire::external(1), 0, 1);
  circuit.connect(Wire::external(1), 0, 1);
  circuit.add_output(Wire::of_module(0));
  EXPECT_THROW((void)circuit.compile(), std::invalid_argument);
}

TEST(Circuit, RejectsSelfLoopAndRequiresOutput) {
  Circuit circuit(1, "loops");
  const int m = circuit.add_module(compile::identity_crn());
  EXPECT_THROW(circuit.connect(Wire::of_module(m), m, 0),
               std::invalid_argument);
  Circuit no_output(1, "no-output");
  EXPECT_THROW((void)no_output.compile(), std::invalid_argument);
}

/// Captures the std::invalid_argument message of a wiring mistake so the
/// tests can lock in the diagnostics `crnc compose` relies on.
template <typename Fn>
std::string wiring_error(Fn&& fn) {
  try {
    std::forward<Fn>(fn)();
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return "(no throw)";
}

TEST(Circuit, RejectsCycles) {
  // m0 -> m1 -> m0: feed-forward only, Circuit must refuse.
  Circuit circuit(1, "cycle");
  const int a = circuit.add_module(compile::identity_crn());
  const int b = circuit.add_module(compile::identity_crn());
  circuit.connect(Wire::of_module(a), b, 0);
  circuit.connect(Wire::of_module(b), a, 0);
  circuit.add_output(Wire::external(0));
  const std::string message = wiring_error([&] { (void)circuit.compile(); });
  EXPECT_NE(message.find("cycle"), std::string::npos) << message;
}

TEST(Circuit, RejectsUnconsumedModuleOutput) {
  // m1's output goes nowhere: its molecules would accumulate outside the
  // declared function.
  Circuit circuit(1, "dangling");
  const int used = circuit.add_module(compile::identity_crn());
  const int dangling = circuit.add_module(compile::scale_crn(2));
  circuit.connect(Wire::external(0), used, 0);
  circuit.connect(Wire::external(0), dangling, 0);
  circuit.add_output(Wire::of_module(used));
  const std::string message = wiring_error([&] { (void)circuit.compile(); });
  EXPECT_NE(message.find("module 1 output unconsumed"), std::string::npos)
      << message;
}

TEST(Circuit, RejectsArityMismatch) {
  Circuit circuit(2, "arity");
  const int m = circuit.add_module(compile::min_crn(2));
  const std::string message = wiring_error(
      [&] { circuit.connect(Wire::external(0), m, 2); });
  EXPECT_NE(message.find("arity mismatch"), std::string::npos) << message;
  EXPECT_NE(message.find("port 2 out of range"), std::string::npos)
      << message;
  EXPECT_NE(message.find("(arity 2)"), std::string::npos) << message;
}

TEST(Circuit, RejectsDuplicateSumJunctionWires) {
  // The same wire twice in the sum junction would fold into one fan-out
  // reaction emitting 2 Y — silent doubling, so it is refused.
  Circuit circuit(1, "dup-sum");
  const int m = circuit.add_module(compile::identity_crn());
  circuit.connect(Wire::external(0), m, 0);
  circuit.add_output(Wire::of_module(m));
  const std::string message = wiring_error(
      [&] { circuit.add_output(Wire::of_module(m)); });
  EXPECT_NE(message.find("duplicate sum-junction wire"), std::string::npos)
      << message;

  Circuit external(1, "dup-external");
  external.add_output(Wire::external(0));
  EXPECT_THROW(external.add_output(Wire::external(0)),
               std::invalid_argument);
}

TEST(Circuit, ExternalInputDirectlyToOutput) {
  // Identity circuit: external wire feeding only Y becomes a conversion.
  Circuit circuit(1, "ext-to-y");
  circuit.add_output(Wire::external(0));
  const Crn crn = circuit.compile();
  EXPECT_TRUE(verify::check_stable_computation(crn, {4}, 4).ok);
}

TEST(Circuit, DeepPipelineComputesComposition) {
  // x -> 2x -> (2x - 3)+ -> min with x. f(x) = min(max(2x-3, 0), x).
  Circuit circuit(1, "pipeline");
  const int doubler = circuit.add_module(compile::scale_crn(2));
  const int clamp = circuit.add_module(compile::clamp_crn(3));
  const int join = circuit.add_module(compile::min_crn(2));
  circuit.connect(Wire::external(0), doubler, 0);
  circuit.connect(Wire::of_module(doubler), clamp, 0);
  circuit.connect(Wire::of_module(clamp), join, 0);
  circuit.connect(Wire::external(0), join, 1);
  circuit.add_output(Wire::of_module(join));
  const Crn crn = circuit.compile();
  const fn::DiscreteFunction expected(
      1,
      [](const fn::Point& x) {
        return std::min(std::max<Int>(2 * x[0] - 3, 0), x[0]);
      },
      "pipeline");
  for (Int x = 0; x <= 8; ++x) {
    EXPECT_TRUE(verify::check_stable_computation(crn, {x}, expected(x)).ok)
        << x;
  }
}

}  // namespace
}  // namespace crnkit::crn
