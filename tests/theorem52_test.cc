// Tests for the full Theorem 5.2 compiler: hand-authored specs for 2D
// functions (min, fig7, fig4a), verified by the exhaustive checker on small
// grids and the randomized checker on larger inputs.
#include <gtest/gtest.h>

#include "compile/theorem52.h"
#include "crn/checks.h"
#include "fn/examples.h"
#include "verify/simcheck.h"
#include "verify/stable.h"

namespace crnkit::compile {
namespace {

using crn::Crn;
using math::Int;
using math::Rational;

ObliviousSpec min2_spec() {
  // min(x1,x2) = min of the two projections, with threshold 0.
  return ObliviousSpec{
      fn::examples::min2(),
      0,
      {fn::QuiltAffine::affine({Rational(1), Rational(0)}, Rational(0), "x1"),
       fn::QuiltAffine::affine({Rational(0), Rational(1)}, Rational(0),
                               "x2")},
      {}};
}

ObliviousSpec fig7_spec() {
  // fig7 = min(g1, g2, gU) for x >= (1,1); below that the rows/columns are
  // handled by the recursive terms.
  return ObliviousSpec{fn::examples::fig7(), 1, fn::examples::fig7_extensions(),
                       {}};
}

ObliviousSpec fig4a_spec() {
  return ObliviousSpec{fn::examples::fig4a(), 4,
                       fn::examples::fig4a_eventual().parts(),
                       {}};
}

TEST(DropInput, ProducesRestrictedBlackBox) {
  const auto f = fn::examples::fig7();
  const auto r = drop_input(f, 0, 2);  // x1 pinned to 2
  EXPECT_EQ(r.dimension(), 1);
  EXPECT_EQ(r(fn::Point{5}), f(fn::Point{2, 5}));
  EXPECT_EQ(r(fn::Point{2}), f(fn::Point{2, 2}));
  EXPECT_EQ(r(fn::Point{0}), f(fn::Point{2, 0}));
}

TEST(Theorem52, OneDimensionalFallsBackToTheorem31) {
  ObliviousSpec spec{fn::examples::floor_3x_over_2(),
                     0,
                     {fn::examples::fig3a_quilt()},
                     {}};
  const Crn crn = compile_theorem52(spec);
  ASSERT_TRUE(crn::is_output_oblivious(crn));
  for (Int x = 0; x <= 10; ++x) {
    EXPECT_TRUE(verify::check_stable_computation(crn, {x}, (3 * x) / 2).ok)
        << x;
  }
}

TEST(Theorem52, MinWithZeroThresholdIsSmall) {
  const Crn crn = compile_theorem52(min2_spec());
  EXPECT_TRUE(crn::is_output_oblivious(crn));
  // Exhaustive check on a small grid.
  const auto sweep =
      verify::check_stable_computation_on_grid(crn, fn::examples::min2(), 3);
  EXPECT_TRUE(sweep.all_ok) << sweep.failures.size() << " failures";
}

TEST(Theorem52, MinLargerInputsRandomized) {
  const Crn crn = compile_theorem52(min2_spec());
  const auto result = verify::sim_check_points(
      crn, fn::examples::min2(),
      {{9, 4}, {20, 20}, {0, 15}, {31, 2}});
  EXPECT_TRUE(result.ok) << result.summary();
}

TEST(Theorem52, Fig7ExhaustiveOnSmallGrid) {
  // Exhaustive proof on the tiny grid (the composed circuit's reachable
  // space grows combinatorially; larger inputs are covered stochastically).
  const Crn crn = compile_theorem52(fig7_spec());
  EXPECT_TRUE(crn::is_output_oblivious(crn));
  const auto sweep = verify::check_stable_computation_on_grid(
      crn, fn::examples::fig7(), 1, verify::StableCheckOptions{600'000});
  EXPECT_TRUE(sweep.all_ok) << sweep.failures.size() << " failures";
}

TEST(Theorem52, Fig7RandomizedOnLargerInputs) {
  const Crn crn = compile_theorem52(fig7_spec());
  const auto result = verify::sim_check_points(
      crn, fn::examples::fig7(),
      {{0, 0}, {4, 4}, {7, 7}, {3, 9}, {9, 3}, {12, 13}, {10, 0}, {0, 10}});
  EXPECT_TRUE(result.ok) << result.summary();
}

TEST(Theorem52, Fig4aRandomizedAcrossAllRegimes) {
  const Crn crn = compile_theorem52(fig4a_spec());
  EXPECT_TRUE(crn::is_output_oblivious(crn));
  // Points in the finite region (incl. the perturbed ones), the boundary
  // strips, and the eventual region.
  const auto result = verify::sim_check_points(
      crn, fn::examples::fig4a(),
      {{0, 0},
       {1, 2},
       {2, 1},
       {3, 3},
       {2, 9},
       {9, 2},
       {0, 8},
       {4, 4},
       {5, 7},
       {8, 8},
       {10, 6}},
      verify::SimCheckOptions{3, 5'000'000, 7});
  EXPECT_TRUE(result.ok) << result.summary();
}

TEST(Theorem52, SpecValidationCatchesWrongEventualMin) {
  // Claim min(x1,x2) is eventually x1 + x2: validation must reject.
  ObliviousSpec bad{fn::examples::min2(),
                    1,
                    {fn::QuiltAffine::affine({Rational(1), Rational(1)},
                                             Rational(0), "sum")},
                    {}};
  EXPECT_THROW((void)compile_theorem52(bad), std::invalid_argument);
}

TEST(Theorem52, MissingRestrictionProviderForHighDimThrows) {
  // A 3D spec with threshold >= 1 and no children must throw (its 2D
  // restrictions cannot be derived automatically).
  const fn::DiscreteFunction f3(
      3,
      [](const fn::Point& x) { return std::min(std::min(x[0], x[1]), x[2]); },
      "min3");
  ObliviousSpec spec{
      f3,
      1,
      {fn::QuiltAffine::affine({Rational(1), Rational(0), Rational(0)},
                               Rational(0), "x1"),
       fn::QuiltAffine::affine({Rational(0), Rational(1), Rational(0)},
                               Rational(0), "x2"),
       fn::QuiltAffine::affine({Rational(0), Rational(0), Rational(1)},
                               Rational(0), "x3")},
      {}};
  EXPECT_THROW((void)compile_theorem52(spec), std::invalid_argument);
}

TEST(Theorem52, ThreeDimensionalMinWithZeroThreshold) {
  // With threshold 0 there are no restrictions, so 3D compiles directly.
  const fn::DiscreteFunction f3(
      3,
      [](const fn::Point& x) { return std::min(std::min(x[0], x[1]), x[2]); },
      "min3");
  ObliviousSpec spec{
      f3,
      0,
      {fn::QuiltAffine::affine({Rational(1), Rational(0), Rational(0)},
                               Rational(0), "x1"),
       fn::QuiltAffine::affine({Rational(0), Rational(1), Rational(0)},
                               Rational(0), "x2"),
       fn::QuiltAffine::affine({Rational(0), Rational(0), Rational(1)},
                               Rational(0), "x3")},
      {}};
  const Crn crn = compile_theorem52(spec);
  const auto result = verify::sim_check_points(
      crn, f3, {{0, 0, 0}, {1, 2, 3}, {5, 5, 5}, {7, 2, 9}});
  EXPECT_TRUE(result.ok) << result.summary();
}

TEST(Theorem52, ThreeDimensionalWithHandAuthoredChildren) {
  // f(x) = min(x1 + x2, x2 + x3, x1 + x3): threshold 1 exercises 2D
  // restrictions, supplied as hand-authored child specs.
  const fn::DiscreteFunction f3(
      3,
      [](const fn::Point& x) {
        return std::min(std::min(x[0] + x[1], x[1] + x[2]), x[0] + x[2]);
      },
      "minpairs");
  auto pairs_parts = [] {
    return std::vector<fn::QuiltAffine>{
        fn::QuiltAffine::affine({Rational(1), Rational(1), Rational(0)},
                                Rational(0), "x1+x2"),
        fn::QuiltAffine::affine({Rational(0), Rational(1), Rational(1)},
                                Rational(0), "x2+x3"),
        fn::QuiltAffine::affine({Rational(1), Rational(0), Rational(1)},
                                Rational(0), "x1+x3")};
  };
  ObliviousSpec spec{f3, 1, pairs_parts(), {}};
  // Children: pin x_i = 0 -> f becomes min over 2D pairs; e.g. pinning
  // x1 = 0 gives min(x2, x2 + x3, x3) = min(x2, x3) over (x2, x3).
  for (int i = 0; i < 3; ++i) {
    const auto restricted = drop_input(f3, i, 0);
    ObliviousSpec child{
        restricted,
        0,
        {fn::QuiltAffine::affine({Rational(1), Rational(0)}, Rational(0),
                                 "a"),
         fn::QuiltAffine::affine({Rational(0), Rational(1)}, Rational(0),
                                 "b")},
        {}};
    spec.children[{i, 0}] = std::make_shared<ObliviousSpec>(child);
  }
  const Crn crn = compile_theorem52(spec);
  EXPECT_TRUE(crn::is_output_oblivious(crn));
  const auto result = verify::sim_check_points(
      crn, f3, {{0, 0, 0}, {2, 0, 5}, {3, 3, 3}, {1, 4, 2}},
      verify::SimCheckOptions{3, 5'000'000, 11});
  EXPECT_TRUE(result.ok) << result.summary();
}

}  // namespace
}  // namespace crnkit::compile
