// Tests for the Section 7 analysis pipeline: decomposition and
// classification, unique determined extensions (Lemma 7.7, Figure 7),
// averaged strip extensions (Lemma 7.16), the Lemma 7.20 agreeing-gradient
// path and its Equation (2) failure diagnosis, and full eventual-min
// extraction (Theorem 7.1) feeding the Theorem 5.2 compiler spec.
#include <gtest/gtest.h>

#include "analysis/eventual_min.h"
#include "analysis/extension.h"
#include "analysis/strip_extension.h"
#include "fn/examples.h"
#include "fn/properties.h"

namespace crnkit::analysis {
namespace {

using math::Int;
using math::Rational;

AnalysisInput fig7_input() {
  return AnalysisInput{fn::examples::fig7(), fn::examples::fig7_arrangement(),
                       1, 12};
}

AnalysisInput eq2_input() {
  return AnalysisInput{fn::examples::eq2_counterexample(),
                       fn::examples::fig7_arrangement(), 1, 12};
}

AnalysisInput fig4a_input() {
  return AnalysisInput{fn::examples::fig4a(),
                       fn::examples::fig4a_arrangement(), 2, 14};
}

TEST(Decomposition, Fig7ThreeRegions) {
  const auto regions = decompose(fig7_input());
  ASSERT_EQ(regions.size(), 3u);
  int determined = 0;
  for (const auto& info : regions) {
    if (info.determined) ++determined;
  }
  EXPECT_EQ(determined, 2);
}

TEST(Decomposition, Fig7DiagonalHasTwoDeterminedNeighbors) {
  const auto regions = decompose(fig7_input());
  for (std::size_t u = 0; u < regions.size(); ++u) {
    if (regions[u].determined) continue;
    EXPECT_TRUE(regions[u].eventual);
    EXPECT_EQ(determined_neighbors(regions, u).size(), 2u);
  }
}

TEST(DeterminedExtension, Fig7UniqueExtensions) {
  const auto input = fig7_input();
  const auto regions = decompose(input);
  for (const auto& info : regions) {
    if (!info.determined) continue;
    const fn::QuiltAffine g = determined_extension(input, info);
    // Each determined extension of fig7 is affine x_i + 1.
    EXPECT_EQ(g.period(), 1);
    const bool is_g1 = g.gradient() == math::RatVec{Rational(0), Rational(1)};
    const bool is_g2 = g.gradient() == math::RatVec{Rational(1), Rational(0)};
    EXPECT_TRUE(is_g1 || is_g2);
    for (const auto& x : info.samples) {
      EXPECT_EQ(g(x), input.f(x));
    }
  }
}

TEST(DeterminedExtension, RejectsUnderDeterminedRegion) {
  const auto input = fig7_input();
  const auto regions = decompose(input);
  for (const auto& info : regions) {
    if (info.determined) continue;
    EXPECT_THROW((void)determined_extension(input, info),
                 std::invalid_argument);
  }
}

TEST(DeterminedExtension, Fig4aRecoversQuiltParts) {
  const auto input = fig4a_input();
  const auto regions = decompose(input);
  int found = 0;
  for (const auto& info : regions) {
    if (!info.determined) continue;
    const fn::QuiltAffine g = determined_extension(input, info);
    ++found;
    // Extensions must dominate f on the far grid (Lemma 7.9, empirically).
    const auto violation = fn::find_domination_violation(
        input.f, g.as_function(), fn::examples::fig4a_threshold(), 6);
    EXPECT_FALSE(violation.has_value())
        << "extension " << g.to_string() << " fails to dominate";
  }
  EXPECT_GE(found, 2);
}

TEST(StripExtension, Fig7AveragedExtensionIsCeilHalfSum) {
  const auto input = fig7_input();
  const auto regions = decompose(input);
  for (std::size_t u = 0; u < regions.size(); ++u) {
    if (regions[u].determined) continue;
    const auto neighbor_ids = determined_neighbors(regions, u);
    std::vector<fn::QuiltAffine> neighbor_exts;
    for (const std::size_t r : neighbor_ids) {
      neighbor_exts.push_back(determined_extension(input, regions[r]));
    }
    const auto strips = geom::decompose_strips(regions[u].region,
                                               input.grid_max);
    ASSERT_EQ(strips.size(), 1u);
    const auto result =
        strip_extension(input, regions, u, strips[0], neighbor_exts);
    ASSERT_TRUE(result.extension.has_value()) << result.diagnosis;
    EXPECT_FALSE(result.used_neighbor_direction);
    // gU = ceil((x1+x2)/2): gradient (1/2, 1/2).
    EXPECT_EQ(result.extension->gradient(),
              (math::RatVec{Rational(1, 2), Rational(1, 2)}));
    const fn::QuiltAffine expected = fn::examples::fig7_extensions()[2];
    for (Int t = 0; t <= 10; ++t) {
      for (Int s = 0; s <= 10; ++s) {
        EXPECT_EQ((*result.extension)(fn::Point{t, s}),
                  expected(fn::Point{t, s}))
            << t << "," << s;
      }
    }
  }
}

TEST(StripExtension, Eq2DiagnosedNotObliviouslyComputable) {
  // Equation (2): determined extensions on both sides share the gradient
  // (1,1); Lemma 7.20 applies and the diagonal strip disagrees -> the
  // pipeline must report the obstruction.
  const auto input = eq2_input();
  const auto regions = decompose(input);
  bool diagnosed = false;
  for (std::size_t u = 0; u < regions.size(); ++u) {
    if (regions[u].determined) continue;
    const auto neighbor_ids = determined_neighbors(regions, u);
    std::vector<fn::QuiltAffine> neighbor_exts;
    for (const std::size_t r : neighbor_ids) {
      neighbor_exts.push_back(determined_extension(input, regions[r]));
    }
    const auto strips = geom::decompose_strips(regions[u].region,
                                               input.grid_max);
    for (const auto& strip : strips) {
      const auto result =
          strip_extension(input, regions, u, strip, neighbor_exts);
      if (!result.extension.has_value()) {
        diagnosed = true;
        EXPECT_NE(result.diagnosis.find("NOT obliviously-computable"),
                  std::string::npos)
            << result.diagnosis;
      }
    }
  }
  EXPECT_TRUE(diagnosed);
}

TEST(EventualMin, Fig7FullPipeline) {
  const auto result = extract_eventual_min(fig7_input());
  ASSERT_TRUE(result.ok) << result.summary();
  EXPECT_EQ(result.parts.size(), 3u);  // g1, g2, gU
  EXPECT_EQ(result.threshold, 0);      // fig7 = min everywhere
  const fn::MinOfQuiltAffine m(result.parts);
  EXPECT_FALSE(
      fn::find_disagreement(m.as_function(), fn::examples::fig7(), 10)
          .has_value());
}

TEST(EventualMin, Eq2FailsWithDiagnosis) {
  const auto result = extract_eventual_min(eq2_input());
  EXPECT_FALSE(result.ok);
  ASSERT_FALSE(result.notes.empty());
  EXPECT_NE(result.notes.front().find("NOT obliviously-computable"),
            std::string::npos);
}

TEST(EventualMin, Fig4aRecoversEventualStructure) {
  const auto result = extract_eventual_min(fig4a_input());
  ASSERT_TRUE(result.ok) << result.summary();
  // The threshold must cover the perturbed finite region (>= 4) but any
  // valid threshold within the grid is acceptable — the pipeline may pick
  // a slightly larger one than the hand-designed n = (4,4), since strip
  // extensions on the boundary bands need not match the designed min
  // exactly at the band edge.
  EXPECT_GE(result.threshold, 4);
  EXPECT_LE(result.threshold, 6);
  const fn::MinOfQuiltAffine m(result.parts);
  const fn::Point n(2, result.threshold);
  // Beyond the reported threshold the min of the extracted parts IS f.
  EXPECT_FALSE(fn::find_domination_violation(fn::examples::fig4a(),
                                             m.as_function(), n, 8)
                   .has_value());
  EXPECT_FALSE(fn::find_domination_violation(m.as_function(),
                                             fn::examples::fig4a(), n, 8)
                   .has_value());
}

TEST(EventualMin, MaxHasNoConsistentExtensions) {
  // max's determined extensions (the two projections) do not dominate:
  // no threshold can make max equal their min. The pipeline must fail.
  AnalysisInput input{fn::examples::max2(), fn::examples::fig7_arrangement(),
                      1, 12};
  const auto result = extract_eventual_min(input);
  EXPECT_FALSE(result.ok);
}

TEST(RestrictArrangement, DropsCoordinateAndTrivialHyperplanes) {
  const auto arr = fn::examples::fig4a_arrangement();
  // Pin x1 = 3: hyperplanes on x1 alone become trivial and are dropped.
  const auto restricted = restrict_arrangement(arr, 0, 3);
  EXPECT_EQ(restricted.dimension(), 1);
  for (const auto& hp : restricted.hyperplanes()) {
    bool nonzero = false;
    for (const Int t : hp.normal) nonzero |= (t != 0);
    EXPECT_TRUE(nonzero);
  }
  EXPECT_LT(restricted.hyperplanes().size(), arr.hyperplanes().size());
}

TEST(MakeSpec, Fig7SpecCompilesInformation) {
  const auto spec = make_spec_via_analysis(fig7_input());
  EXPECT_EQ(spec.threshold, 0);
  EXPECT_EQ(spec.eventual.size(), 3u);
  EXPECT_TRUE(spec.children.empty());  // 1D restrictions are auto-derived
}

TEST(MakeSpec, RejectsEq2) {
  EXPECT_THROW((void)make_spec_via_analysis(eq2_input()),
               std::invalid_argument);
}

}  // namespace
}  // namespace crnkit::analysis
