// Tests for the compose expression IR: parsing, evaluation, deterministic
// random generation, and lowering through crn::Circuit into flat CRNs that
// stably compute the expression.
#include <gtest/gtest.h>

#include "compile/circuit_expr.h"
#include "crn/checks.h"
#include "crn/passes.h"
#include "verify/simcheck.h"
#include "verify/stable.h"

namespace crnkit::compile {
namespace {

using math::Int;

fn::Point pt(std::initializer_list<Int> xs) { return fn::Point(xs); }

TEST(CircuitExprParse, AffineAndMin) {
  const CircuitExpr e = parse_circuit_expr("min(x1 + x2, 2*x3) + 1");
  EXPECT_EQ(e.arity(), 3);
  EXPECT_EQ(e.module_count(), 4);  // sum, scale, min, +1 wrapper
  EXPECT_EQ(e.evaluate(pt({2, 3, 1})), 3);   // min(5, 2) + 1
  EXPECT_EQ(e.evaluate(pt({1, 0, 5})), 2);   // min(1, 10) + 1
  EXPECT_EQ(e.evaluate(pt({0, 0, 0})), 1);
}

TEST(CircuitExprParse, NestedFunctionsAndConstants) {
  const CircuitExpr e = parse_circuit_expr("div(sub(max(x1, 2), 1), 2)");
  EXPECT_EQ(e.arity(), 1);
  // floor((max(x,2) - 1)+ / 2)
  EXPECT_EQ(e.evaluate(pt({0})), 0);   // (2-1)/2
  EXPECT_EQ(e.evaluate(pt({5})), 2);   // (5-1)/2
  EXPECT_EQ(e.evaluate(pt({9})), 4);
}

TEST(CircuitExprParse, PureConstant) {
  const CircuitExpr e = parse_circuit_expr("2 + 3");
  EXPECT_EQ(e.module_count(), 1);
  EXPECT_EQ(e.evaluate(pt({0})), 5);
}

TEST(CircuitExprParse, SharedSubexpressionViaRepeatedInput) {
  const CircuitExpr e = parse_circuit_expr("x1 + x1 + x2");
  EXPECT_EQ(e.evaluate(pt({3, 1})), 7);
}

TEST(CircuitExprParse, RejectsMalformedInput) {
  EXPECT_THROW((void)parse_circuit_expr(""), std::invalid_argument);
  EXPECT_THROW((void)parse_circuit_expr("min(x1"), std::invalid_argument);
  EXPECT_THROW((void)parse_circuit_expr("min(x1)"), std::invalid_argument);
  EXPECT_THROW((void)parse_circuit_expr("x1 +"), std::invalid_argument);
  EXPECT_THROW((void)parse_circuit_expr("x0"), std::invalid_argument);
  EXPECT_THROW((void)parse_circuit_expr("foo(x1)"), std::invalid_argument);
  EXPECT_THROW((void)parse_circuit_expr("x1 x2"), std::invalid_argument);
  EXPECT_THROW((void)parse_circuit_expr("min(x1, 99999999999999999999)"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_circuit_expr("div(x1, 0)"),
               std::invalid_argument);
}

TEST(CircuitExprParse, GeneralMaxIsRejectedWithPaperDiagnostic) {
  try {
    (void)parse_circuit_expr("max(x1, x2)");
    FAIL() << "general max must not parse";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("not obliviously computable"),
              std::string::npos)
        << e.what();
  }
}

TEST(CircuitExprParse, ToStringRoundTripsThroughParser) {
  const CircuitExpr e =
      parse_circuit_expr("min(x1 + 2*x2 + 1, div(x1, 2)) + max(x2, 3)");
  const CircuitExpr reparsed = parse_circuit_expr(e.to_string());
  for (Int a = 0; a <= 3; ++a) {
    for (Int b = 0; b <= 3; ++b) {
      EXPECT_EQ(e.evaluate(pt({a, b})), reparsed.evaluate(pt({a, b})))
          << a << "," << b;
    }
  }
}

TEST(CircuitExprLower, CompiledCrnComputesTheExpression) {
  const CircuitExpr e = parse_circuit_expr("min(x1 + x2, 2*x3) + 1");
  const LoweredCircuit lowered = lower_circuit_expr(e, "t");
  EXPECT_EQ(static_cast<int>(lowered.modules.size()), e.module_count());
  EXPECT_TRUE(crn::is_output_oblivious(lowered.crn));
  const auto f = e.as_function("t");
  for (Int a = 0; a <= 1; ++a) {
    for (Int b = 0; b <= 1; ++b) {
      for (Int c = 0; c <= 1; ++c) {
        const auto result = verify::check_stable_computation(
            lowered.crn, {a, b, c}, f(pt({a, b, c})));
        EXPECT_TRUE(result.ok && result.complete)
            << a << "," << b << "," << c;
      }
    }
  }
}

TEST(CircuitExprLower, DivModuleIsLemma61Quilt) {
  const crn::Crn div3 = div_crn(3);
  EXPECT_TRUE(crn::is_output_oblivious(div3));
  ASSERT_TRUE(div3.leader().has_value());
  for (Int x = 0; x <= 9; ++x) {
    EXPECT_TRUE(verify::check_stable_computation(div3, {x}, x / 3).ok) << x;
  }
  // k = 1 degenerates to the identity conversion.
  EXPECT_EQ(div_crn(1).reactions().size(), 1u);
}

TEST(CircuitExprRandom, DeterministicAndExactModuleCount) {
  const CircuitExpr a = random_circuit_expr(12, 7);
  const CircuitExpr b = random_circuit_expr(12, 7);
  EXPECT_EQ(a.to_string(), b.to_string());
  EXPECT_EQ(a.module_count(), 12);
  EXPECT_EQ(random_circuit_expr(31, 5).module_count(), 31);
  // Different seeds give different circuits (overwhelmingly).
  EXPECT_NE(random_circuit_expr(12, 1).to_string(),
            random_circuit_expr(12, 2).to_string());
}

TEST(CircuitExprRandom, LowersVerifiesAndShrinksAcrossSeeds) {
  // The whole pipeline across several seeds: lower, optimize (must
  // strictly shrink: the collector sum always leaves collapsible unary
  // conversions), and the optimized network still computes the expression
  // — exact on {0,1}^d, simcheck on a larger point.
  for (const std::uint64_t seed : {1, 2, 3, 4, 5}) {
    const CircuitExpr e = random_circuit_expr(12, seed);
    const LoweredCircuit lowered = lower_circuit_expr(e, "r");
    const crn::PassPipelineResult optimized = crn::optimize(lowered.crn);
    EXPECT_LT(optimized.species_after, optimized.species_before) << seed;
    EXPECT_LT(optimized.reactions_after, optimized.reactions_before) << seed;

    const auto f = e.as_function("r");
    fn::Point x(static_cast<std::size_t>(e.arity()), 0);
    verify::StableCheckOptions budget;
    budget.max_configs = 300'000;  // heavy-fan-out seeds may exceed this
    for (int mask = 0; mask < (1 << e.arity()); ++mask) {
      for (int i = 0; i < e.arity(); ++i) {
        x[static_cast<std::size_t>(i)] = (mask >> i) & 1;
      }
      const auto result =
          verify::check_stable_computation(optimized.crn, x, f(x), budget);
      // Any *complete* exploration must be a proof; an exhausted budget is
      // inconclusive (the simcheck below still covers the point
      // stochastically), but never a disproof.
      if (result.complete) {
        EXPECT_TRUE(result.ok) << "seed " << seed << " at mask " << mask;
      }
    }

    fn::Point big(static_cast<std::size_t>(e.arity()), 6);
    verify::SimCheckOptions options;
    options.trials_per_point = 3;
    const auto sim = verify::sim_check_point(optimized.crn, f, big, options);
    EXPECT_EQ(sim.verdict(), verify::SimCheckResult::Verdict::kPass)
        << "seed " << seed << ": " << sim.summary();
  }
}

}  // namespace
}  // namespace crnkit::compile
