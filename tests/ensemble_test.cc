// Tests for the batched ensemble runner: determinism regardless of thread
// count, correct aggregation, and agreement with the per-call simulators.
#include <gtest/gtest.h>

#include "compile/primitives.h"
#include "crn/compose.h"
#include "sim/ensemble.h"

namespace crnkit::sim {
namespace {

using crn::Crn;
using math::Int;

EnsembleOptions silent_options(int trajectories, int threads,
                               std::uint64_t seed) {
  EnsembleOptions options;
  options.trajectories = trajectories;
  options.threads = threads;
  options.seed = seed;
  options.method = EnsembleMethod::kSilentRun;
  return options;
}

TEST(Ensemble, BitReproducibleAcrossThreadCounts) {
  const Crn crn = crn::concatenate(compile::min_crn(2),
                                   compile::scale_crn(2), "2min");
  const EnsembleRunner runner(crn);
  const auto reference =
      runner.run_for_input({20, 13}, silent_options(64, 1, 42));
  for (const int threads : {2, 3, 8}) {
    const auto batch =
        runner.run_for_input({20, 13}, silent_options(64, threads, 42));
    ASSERT_EQ(batch.trajectories.size(), reference.trajectories.size());
    for (std::size_t i = 0; i < batch.trajectories.size(); ++i) {
      EXPECT_EQ(batch.trajectories[i].final_config,
                reference.trajectories[i].final_config)
          << "trajectory " << i << " with " << threads << " threads";
      EXPECT_EQ(batch.trajectories[i].events,
                reference.trajectories[i].events);
      EXPECT_EQ(batch.trajectories[i].silent,
                reference.trajectories[i].silent);
    }
    EXPECT_EQ(batch.total_events, reference.total_events);
    EXPECT_EQ(batch.silent_count, reference.silent_count);
    EXPECT_DOUBLE_EQ(batch.events_stats.mean(),
                     reference.events_stats.mean());
    EXPECT_DOUBLE_EQ(batch.output_stats.mean(),
                     reference.output_stats.mean());
  }
}

TEST(Ensemble, SeedsChangeTrajectories) {
  const Crn crn = compile::fig1_max_crn();
  const EnsembleRunner runner(crn);
  EnsembleOptions options;
  options.trajectories = 8;
  options.method = EnsembleMethod::kDirect;
  options.seed = 1;
  const auto a = runner.run_for_input({6, 9}, options);
  options.seed = 2;
  const auto b = runner.run_for_input({6, 9}, options);
  // Outputs agree (max is stably computed) but the SSA completion times are
  // continuous random variables and must differ between seeds.
  EXPECT_EQ(a.output, b.output);
  bool any_different = false;
  for (std::size_t i = 0; i < a.trajectories.size(); ++i) {
    if (a.trajectories[i].time != b.trajectories[i].time) {
      any_different = true;
    }
  }
  EXPECT_TRUE(any_different);
}

TEST(Ensemble, SilentRunComputesStableOutput) {
  const Crn crn = crn::concatenate(compile::min_crn(2),
                                   compile::scale_crn(2), "2min");
  const EnsembleRunner runner(crn);
  const auto batch = runner.run_for_input({5, 3}, silent_options(16, 0, 7));
  EXPECT_EQ(batch.silent_count, 16);
  EXPECT_TRUE(batch.output_consistent);
  EXPECT_EQ(batch.output, 6);
  EXPECT_EQ(batch.output_stats.min(), 6.0);
  EXPECT_EQ(batch.output_stats.max(), 6.0);
}

TEST(Ensemble, DirectMethodBatchTracksEventsAndTime) {
  const Crn crn = compile::scale_crn(2);
  const EnsembleRunner runner(crn);
  EnsembleOptions options;
  options.trajectories = 10;
  options.method = EnsembleMethod::kDirect;
  options.seed = 3;
  const auto batch = runner.run_for_input({25}, options);
  EXPECT_EQ(batch.silent_count, 10);  // every trajectory exhausts
  EXPECT_EQ(batch.total_events, 250u);  // 25 conversions each
  EXPECT_TRUE(batch.output_consistent);
  EXPECT_EQ(batch.output, 50);
  for (const Trajectory& t : batch.trajectories) {
    EXPECT_GT(t.time, 0.0);
  }
  EXPECT_GT(batch.wall_seconds, 0.0);
  EXPECT_GT(batch.events_per_second(), 0.0);
}

TEST(Ensemble, NextReactionMatchesDirectOutputs) {
  const Crn crn = compile::min_crn(2);
  const EnsembleRunner runner(crn);
  for (const EnsembleMethod method :
       {EnsembleMethod::kDirect, EnsembleMethod::kNextReaction}) {
    EnsembleOptions options;
    options.trajectories = 6;
    options.method = method;
    options.seed = 11;
    const auto batch = runner.run_for_input({12, 30}, options);
    EXPECT_EQ(batch.silent_count, 6);
    EXPECT_TRUE(batch.output_consistent);
    EXPECT_EQ(batch.output, 12);
  }
}

TEST(Ensemble, PopulationMethodReportsParallelTime) {
  const Crn crn = compile::min_crn(2);  // bimolecular already
  const EnsembleRunner runner(crn);
  EnsembleOptions options;
  options.trajectories = 5;
  options.method = EnsembleMethod::kPopulation;
  options.seed = 17;
  const auto batch = runner.run_for_input({6, 9}, options);
  EXPECT_EQ(batch.silent_count, 5);
  EXPECT_TRUE(batch.output_consistent);
  EXPECT_EQ(batch.output, 6);
  for (const Trajectory& t : batch.trajectories) {
    EXPECT_GT(t.time, 0.0);  // parallel time
    EXPECT_GT(t.events, 0u);  // interactions
  }
}

TEST(Ensemble, ZeroTrajectoriesIsEmpty) {
  const Crn crn = compile::min_crn(2);
  const EnsembleRunner runner(crn);
  const auto batch = runner.run_for_input({1, 1}, silent_options(0, 4, 9));
  EXPECT_TRUE(batch.trajectories.empty());
  EXPECT_EQ(batch.total_events, 0u);
  EXPECT_EQ(batch.silent_count, 0);
}

}  // namespace
}  // namespace crnkit::sim
