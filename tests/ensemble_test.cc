// Tests for the batched ensemble runner: determinism regardless of thread
// count, correct aggregation, and agreement with the per-call simulators.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "compile/primitives.h"
#include "crn/compose.h"
#include "sim/ensemble.h"
#include "util/task_pool.h"

namespace crnkit::sim {
namespace {

using crn::Crn;
using math::Int;

EnsembleOptions silent_options(int trajectories, int threads,
                               std::uint64_t seed) {
  EnsembleOptions options;
  options.trajectories = trajectories;
  options.threads = threads;
  options.seed = seed;
  options.method = EnsembleMethod::kSilentRun;
  return options;
}

TEST(Ensemble, BitReproducibleAcrossThreadCounts) {
  const Crn crn = crn::concatenate(compile::min_crn(2),
                                   compile::scale_crn(2), "2min");
  const EnsembleRunner runner(crn);
  const auto reference =
      runner.run_for_input({20, 13}, silent_options(64, 1, 42));
  for (const int threads : {2, 3, 8}) {
    const auto batch =
        runner.run_for_input({20, 13}, silent_options(64, threads, 42));
    ASSERT_EQ(batch.trajectories.size(), reference.trajectories.size());
    for (std::size_t i = 0; i < batch.trajectories.size(); ++i) {
      EXPECT_EQ(batch.trajectories[i].final_config,
                reference.trajectories[i].final_config)
          << "trajectory " << i << " with " << threads << " threads";
      EXPECT_EQ(batch.trajectories[i].events,
                reference.trajectories[i].events);
      EXPECT_EQ(batch.trajectories[i].silent,
                reference.trajectories[i].silent);
    }
    EXPECT_EQ(batch.total_events, reference.total_events);
    EXPECT_EQ(batch.silent_count, reference.silent_count);
    EXPECT_DOUBLE_EQ(batch.events_stats.mean(),
                     reference.events_stats.mean());
    EXPECT_DOUBLE_EQ(batch.output_stats.mean(),
                     reference.output_stats.mean());
  }
}

TEST(Ensemble, SeedsChangeTrajectories) {
  const Crn crn = compile::fig1_max_crn();
  const EnsembleRunner runner(crn);
  EnsembleOptions options;
  options.trajectories = 8;
  options.method = EnsembleMethod::kDirect;
  options.seed = 1;
  const auto a = runner.run_for_input({6, 9}, options);
  options.seed = 2;
  const auto b = runner.run_for_input({6, 9}, options);
  // Outputs agree (max is stably computed) but the SSA completion times are
  // continuous random variables and must differ between seeds.
  EXPECT_EQ(a.output, b.output);
  bool any_different = false;
  for (std::size_t i = 0; i < a.trajectories.size(); ++i) {
    if (a.trajectories[i].time != b.trajectories[i].time) {
      any_different = true;
    }
  }
  EXPECT_TRUE(any_different);
}

TEST(Ensemble, SilentRunComputesStableOutput) {
  const Crn crn = crn::concatenate(compile::min_crn(2),
                                   compile::scale_crn(2), "2min");
  const EnsembleRunner runner(crn);
  const auto batch = runner.run_for_input({5, 3}, silent_options(16, 0, 7));
  EXPECT_EQ(batch.silent_count, 16);
  EXPECT_TRUE(batch.output_consistent);
  EXPECT_EQ(batch.output, 6);
  EXPECT_EQ(batch.output_stats.min(), 6.0);
  EXPECT_EQ(batch.output_stats.max(), 6.0);
}

TEST(Ensemble, DirectMethodBatchTracksEventsAndTime) {
  const Crn crn = compile::scale_crn(2);
  const EnsembleRunner runner(crn);
  EnsembleOptions options;
  options.trajectories = 10;
  options.method = EnsembleMethod::kDirect;
  options.seed = 3;
  const auto batch = runner.run_for_input({25}, options);
  EXPECT_EQ(batch.silent_count, 10);  // every trajectory exhausts
  EXPECT_EQ(batch.total_events, 250u);  // 25 conversions each
  EXPECT_TRUE(batch.output_consistent);
  EXPECT_EQ(batch.output, 50);
  for (const Trajectory& t : batch.trajectories) {
    EXPECT_GT(t.time, 0.0);
  }
  EXPECT_GT(batch.wall_seconds, 0.0);
  EXPECT_GT(batch.events_per_second(), 0.0);
}

TEST(Ensemble, NextReactionMatchesDirectOutputs) {
  const Crn crn = compile::min_crn(2);
  const EnsembleRunner runner(crn);
  for (const EnsembleMethod method :
       {EnsembleMethod::kDirect, EnsembleMethod::kNextReaction}) {
    EnsembleOptions options;
    options.trajectories = 6;
    options.method = method;
    options.seed = 11;
    const auto batch = runner.run_for_input({12, 30}, options);
    EXPECT_EQ(batch.silent_count, 6);
    EXPECT_TRUE(batch.output_consistent);
    EXPECT_EQ(batch.output, 12);
  }
}

TEST(Ensemble, PopulationMethodReportsParallelTime) {
  const Crn crn = compile::min_crn(2);  // bimolecular already
  const EnsembleRunner runner(crn);
  EnsembleOptions options;
  options.trajectories = 5;
  options.method = EnsembleMethod::kPopulation;
  options.seed = 17;
  const auto batch = runner.run_for_input({6, 9}, options);
  EXPECT_EQ(batch.silent_count, 5);
  EXPECT_TRUE(batch.output_consistent);
  EXPECT_EQ(batch.output, 6);
  for (const Trajectory& t : batch.trajectories) {
    EXPECT_GT(t.time, 0.0);  // parallel time
    EXPECT_GT(t.events, 0u);  // interactions
  }
}

TEST(Ensemble, ConsecutiveRunsReusePoolWorkers) {
  // The fix this PR exists for: simcheck/compose certification calls
  // run() hundreds of times with small batches, and each call used to
  // spawn and join a fresh thread team. Two consecutive runs must now (a)
  // leave the persistent pool's worker count unchanged — reuse, not
  // respawn — and (b) produce bit-identical results (no thread-count
  // drift between calls).
  const Crn crn = crn::concatenate(compile::min_crn(2),
                                   compile::scale_crn(2), "2min");
  const EnsembleRunner runner(crn);
  const auto first = runner.run_for_input({15, 9}, silent_options(24, 4, 5));
  util::TaskPool& pool = util::TaskPool::instance();
  const int workers_after_first = pool.worker_count();
  EXPECT_GE(workers_after_first, 3) << "threads=4 should grow the pool";
  const auto jobs_before = pool.counters().jobs;

  const auto second = runner.run_for_input({15, 9},
                                           silent_options(24, 4, 5));
  EXPECT_EQ(pool.worker_count(), workers_after_first)
      << "second run() must reuse pool workers, not spawn new ones";
  EXPECT_GE(pool.counters().jobs, jobs_before + 1)
      << "second run() should have been scheduled as a pool job";

  ASSERT_EQ(first.trajectories.size(), second.trajectories.size());
  for (std::size_t i = 0; i < first.trajectories.size(); ++i) {
    EXPECT_EQ(first.trajectories[i].final_config,
              second.trajectories[i].final_config) << "trajectory " << i;
    EXPECT_EQ(first.trajectories[i].events, second.trajectories[i].events);
  }
  EXPECT_EQ(first.total_events, second.total_events);
  EXPECT_EQ(first.output, second.output);
}

TEST(Ensemble, SmallBatchesRunInChunksWithoutDroppingTrajectories) {
  // Chunked scheduling must cover every trajectory slot exactly once even
  // when the batch is smaller than (workers * chunking factor).
  const Crn crn = compile::min_crn(2);
  const EnsembleRunner runner(crn);
  for (const int trajectories : {1, 2, 3, 5, 7}) {
    for (const int threads : {2, 8}) {
      const auto batch = runner.run_for_input(
          {4, 6}, silent_options(trajectories, threads, 13));
      ASSERT_EQ(batch.trajectories.size(),
                static_cast<std::size_t>(trajectories));
      EXPECT_EQ(batch.silent_count, trajectories);
      for (const Trajectory& t : batch.trajectories) {
        EXPECT_FALSE(t.final_config.empty());
      }
    }
  }
}

TEST(Ensemble, MismatchedRatesRejectedAtEveryEntryPoint) {
  // The rates vector is validated at the batch boundary with the
  // reaction count in the message — for every method, including
  // kSilentRun (which ignores rates) via the run_until_silent path.
  const Crn crn = compile::min_crn(2);  // 1 reaction
  const EnsembleRunner runner(crn);
  for (const EnsembleMethod method :
       {EnsembleMethod::kSilentRun, EnsembleMethod::kDirect,
        EnsembleMethod::kNextReaction, EnsembleMethod::kPopulation}) {
    EnsembleOptions options;
    options.trajectories = 2;
    options.method = method;
    options.rates = {1.0, 2.0, 3.0};
    try {
      (void)runner.run_for_input({2, 2}, options);
      FAIL() << "expected invalid_argument, method="
             << static_cast<int>(method);
    } catch (const std::invalid_argument& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("3 entries"), std::string::npos) << what;
      EXPECT_NE(what.find("1 reactions"), std::string::npos) << what;
    }
  }
}

TEST(Ensemble, ZeroTrajectoriesIsEmpty) {
  const Crn crn = compile::min_crn(2);
  const EnsembleRunner runner(crn);
  const auto batch = runner.run_for_input({1, 1}, silent_options(0, 4, 9));
  EXPECT_TRUE(batch.trajectories.empty());
  EXPECT_EQ(batch.total_events, 0u);
  EXPECT_EQ(batch.silent_count, 0);
}

}  // namespace
}  // namespace crnkit::sim
