// Tests for the crnc CLI driver: every subcommand runs in-process against
// captured streams, --json output is syntactically valid JSON, exit codes
// distinguish success / check failure / usage error, and file workloads
// round-trip through compile -> verify.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "cli/crnc.h"
#include "scenario/registry.h"

namespace crnkit::cli {
namespace {

/// Minimal recursive-descent JSON syntax checker (objects, arrays,
/// strings, numbers, booleans, null) — enough to catch malformed output.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string();
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    return number();
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') return ++pos_, true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') return ++pos_, true;
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') return ++pos_, true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') return ++pos_, true;
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const std::string& word) {
    if (text_.compare(pos_, word.size(), word) != 0) return false;
    pos_ += word.size();
    return true;
  }
  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

struct RunResult {
  int status = -1;
  std::string out;
  std::string err;
};

RunResult run(const std::vector<std::string>& args) {
  std::ostringstream out;
  std::ostringstream err;
  const int status = run_crnc(args, out, err);
  return {status, out.str(), err.str()};
}

void expect_valid_json(const std::string& text) {
  EXPECT_TRUE(JsonChecker(text).valid()) << "invalid JSON:\n" << text;
}

TEST(Crnc, NoArgumentsPrintsUsageAndFails) {
  const auto r = run({});
  EXPECT_EQ(r.status, 2);
  EXPECT_NE(r.out.find("usage:"), std::string::npos);
}

TEST(Crnc, HelpSucceeds) {
  EXPECT_EQ(run({"help"}).status, 0);
}

TEST(Crnc, UnknownCommandFailsWithUsage) {
  const auto r = run({"frobnicate"});
  EXPECT_EQ(r.status, 2);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(Crnc, UnknownScenarioSuggests) {
  const auto r = run({"show", "fig1/minn"});
  EXPECT_EQ(r.status, 2);
  EXPECT_NE(r.err.find("fig1/min"), std::string::npos) << r.err;
}

TEST(Crnc, UnknownFlagIsRejected) {
  const auto r = run({"list", "--bogus"});
  EXPECT_EQ(r.status, 2);
  EXPECT_NE(r.err.find("--bogus"), std::string::npos);
}

TEST(Crnc, ListHumanAndJson) {
  const auto human = run({"list"});
  EXPECT_EQ(human.status, 0);
  EXPECT_NE(human.out.find("fig1/min"), std::string::npos);

  const auto json = run({"list", "--json"});
  EXPECT_EQ(json.status, 0);
  expect_valid_json(json.out);
  EXPECT_NE(json.out.find("\"scenarios\""), std::string::npos);
  EXPECT_NE(json.out.find("chain/compose-256"), std::string::npos);
}

TEST(Crnc, ListMarkdownEmitsTable) {
  const auto r = run({"list", "--markdown"});
  EXPECT_EQ(r.status, 0);
  EXPECT_NE(r.out.find("| Scenario |"), std::string::npos);
  EXPECT_NE(r.out.find("`fig1/min`"), std::string::npos);
}

TEST(Crnc, ListTagFilter) {
  const auto r = run({"list", "--json", "--tag", "protocol"});
  EXPECT_EQ(r.status, 0);
  expect_valid_json(r.out);
  EXPECT_NE(r.out.find("protocol/majority"), std::string::npos);
  EXPECT_EQ(r.out.find("fig1/min"), std::string::npos);
}

TEST(Crnc, ShowJsonCarriesExpectedOutputs) {
  const auto r = run({"show", "fig1/twice", "--json"});
  EXPECT_EQ(r.status, 0);
  expect_valid_json(r.out);
  EXPECT_NE(r.out.find("\"verify_points\""), std::string::npos);
  EXPECT_NE(r.out.find("\"expected\""), std::string::npos);
  EXPECT_NE(r.out.find("\"crn_text\""), std::string::npos);
}

TEST(Crnc, CompileEmitsParsableText) {
  const auto r = run({"compile", "fig1/min"});
  EXPECT_EQ(r.status, 0);
  EXPECT_NE(r.out.find("crn min"), std::string::npos);
  EXPECT_NE(r.out.find("rxn"), std::string::npos);
}

TEST(Crnc, CompileToFileThenVerifyAsFileWorkload) {
  const std::string path =
      testing::TempDir() + "/crnc_cli_test_doubling.crn";
  const auto compile = run({"compile", "fig1/twice", "--out", path});
  EXPECT_EQ(compile.status, 0);

  // File workloads carry no reference function: --input/--expect drive it.
  const auto good = run({"verify", path, "--input", "4", "--expect", "8"});
  EXPECT_EQ(good.status, 0) << good.err;
  const auto bad = run({"verify", path, "--input", "4", "--expect", "9"});
  EXPECT_EQ(bad.status, 1);
  const auto missing = run({"verify", path});
  EXPECT_EQ(missing.status, 2);
  std::remove(path.c_str());
}

TEST(Crnc, SimulateAgreesWithReference) {
  const auto r = run({"simulate", "fig1/min", "--input", "5,7",
                      "--trajectories", "4", "--seed", "7", "--json"});
  EXPECT_EQ(r.status, 0) << r.err;
  expect_valid_json(r.out);
  EXPECT_NE(r.out.find("\"expected\": 5"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("\"ok\": true"), std::string::npos) << r.out;
}

TEST(Crnc, SimulateBudgetCappedReportsInconclusiveNotAgreement) {
  // No trajectory reaches silence inside 3 events, so nothing was actually
  // compared against the reference — the output must say so instead of
  // claiming agreement.
  const auto r = run({"simulate", "fig1/min", "--input", "50,50",
                      "--trajectories", "2", "--max-events", "3", "--json"});
  EXPECT_EQ(r.status, 0) << r.err;
  expect_valid_json(r.out);
  EXPECT_NE(r.out.find("\"silent\": 0"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("\"compared\": false"), std::string::npos) << r.out;

  const auto human = run({"simulate", "fig1/min", "--input", "50,50",
                          "--trajectories", "2", "--max-events", "3"});
  EXPECT_NE(human.out.find("inconclusive"), std::string::npos) << human.out;
  EXPECT_EQ(human.out.find("agrees"), std::string::npos) << human.out;
}

TEST(Crnc, SimulateMethodsRun) {
  for (const char* method : {"silent", "direct", "next-reaction"}) {
    const auto r = run({"simulate", "fig1/twice", "--input", "20",
                        "--trajectories", "2", "--method", method,
                        "--json"});
    EXPECT_EQ(r.status, 0) << method << ": " << r.err;
    expect_valid_json(r.out);
  }
  // The population scheduler needs a bimolecular network.
  const auto r = run({"simulate", "protocol/floor-3x2", "--input", "12",
                      "--trajectories", "2", "--method", "population",
                      "--json"});
  EXPECT_EQ(r.status, 0) << r.err;
  expect_valid_json(r.out);
}

TEST(Crnc, VerifyScenarioJson) {
  const auto r = run({"verify", "fig1/min", "--json"});
  EXPECT_EQ(r.status, 0) << r.err;
  expect_valid_json(r.out);
  EXPECT_NE(r.out.find("\"ok\": true"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("\"proved\": 25"), std::string::npos) << r.out;
}

TEST(Crnc, VerifyGridOverride) {
  const auto r = run({"verify", "fig1/twice", "--grid", "3", "--json"});
  EXPECT_EQ(r.status, 0) << r.err;
  EXPECT_NE(r.out.find("\"proved\": 4"), std::string::npos) << r.out;
}

TEST(Crnc, VerifyStatsEmitsPerfFields) {
  const auto r = run({"verify", "fig1/min", "--stats", "--json"});
  EXPECT_EQ(r.status, 0) << r.err;
  expect_valid_json(r.out);
  for (const char* field : {"\"stats\"", "\"wall_seconds\"",
                            "\"configs_per_sec\"", "\"frontier_peak\"",
                            "\"arena_bytes\"", "\"edges\""}) {
    EXPECT_NE(r.out.find(field), std::string::npos) << field << "\n" << r.out;
  }
}

TEST(Crnc, VerifyThreadsIsDeterministic) {
  // Without --stats (no timings), the whole JSON report must be
  // byte-identical at any thread count.
  const auto serial = run({"verify", "thm52/fig7", "--threads", "1",
                           "--max-configs", "30000", "--json"});
  const auto parallel = run({"verify", "thm52/fig7", "--threads", "3",
                             "--max-configs", "30000", "--json"});
  EXPECT_EQ(serial.status, parallel.status);
  EXPECT_EQ(serial.out, parallel.out);
}

TEST(Crnc, VerifyTruncationIsInconclusiveNotPass) {
  // A budget too small for the reachable set must never produce a PASS:
  // exit 1 and per-point status "inconclusive".
  const auto r = run({"verify", "fig1/twice", "--input", "50",
                      "--max-configs", "5", "--json"});
  EXPECT_EQ(r.status, 1);
  expect_valid_json(r.out);
  EXPECT_NE(r.out.find("\"status\": \"inconclusive\""), std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("\"complete\": false"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("\"inconclusive\": 1"), std::string::npos) << r.out;
  EXPECT_EQ(r.out.find("\"status\": \"proved\""), std::string::npos) << r.out;
}

TEST(Crnc, VerifyUnverifiableSkipsUnlessForced) {
  const auto skipped = run({"verify", "fig1/2max-broken", "--json"});
  EXPECT_EQ(skipped.status, 0);
  expect_valid_json(skipped.out);
  EXPECT_NE(skipped.out.find("\"skipped\": true"), std::string::npos);

  const auto forced = run({"verify", "fig1/2max-broken", "--force"});
  EXPECT_EQ(forced.status, 1);
  EXPECT_NE(forced.out.find("FAILED"), std::string::npos);
}

TEST(Crnc, VerifyEveryRegisteredScenario) {
  // The catalog's contract behind `crnc list`: every registered scenario
  // verifies, or is tagged unverifiable (which `verify` reports as a
  // skip). New registrations are covered automatically.
  for (const std::string& name : scenario::Registry::builtin().names()) {
    const auto r = run({"verify", name, "--json"});
    EXPECT_EQ(r.status, 0) << name << ":\n" << r.out << r.err;
    expect_valid_json(r.out);
  }
}

TEST(Crnc, BenchEmitsRecordShape) {
  const auto r = run({"bench", "fig1/min", "--trajectories", "2", "--events",
                      "50000", "--json"});
  EXPECT_EQ(r.status, 0) << r.err;
  expect_valid_json(r.out);
  EXPECT_NE(r.out.find("\"events_per_sec\""), std::string::npos);
  EXPECT_NE(r.out.find("\"wall_seconds\""), std::string::npos);
}

}  // namespace
}  // namespace crnkit::cli
