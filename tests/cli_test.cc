// Tests for the crnc CLI driver: every subcommand runs in-process against
// captured streams, --json output is syntactically valid JSON, exit codes
// distinguish success / check failure / usage error, and file workloads
// round-trip through compile -> verify.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "cli/crnc.h"
#include "scenario/registry.h"
#include "util/json_parse.h"
#include "util/json_value.h"

namespace crnkit::cli {
namespace {

// The JSON syntax checker is shared with the json_check tool the bench
// smoke tests use (util/json_parse.h).
using JsonChecker = util::JsonSyntaxChecker;

struct RunResult {
  int status = -1;
  std::string out;
  std::string err;
};

RunResult run(const std::vector<std::string>& args) {
  std::ostringstream out;
  std::ostringstream err;
  const int status = run_crnc(args, out, err);
  return {status, out.str(), err.str()};
}

void expect_valid_json(const std::string& text) {
  EXPECT_TRUE(JsonChecker(text).valid()) << "invalid JSON:\n" << text;
}

TEST(Crnc, NoArgumentsPrintsUsageAndFails) {
  const auto r = run({});
  EXPECT_EQ(r.status, 2);
  EXPECT_NE(r.out.find("usage:"), std::string::npos);
}

TEST(Crnc, HelpSucceeds) {
  EXPECT_EQ(run({"help"}).status, 0);
}

TEST(Crnc, UnknownCommandFailsWithUsage) {
  const auto r = run({"frobnicate"});
  EXPECT_EQ(r.status, 2);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(Crnc, UnknownScenarioSuggests) {
  const auto r = run({"show", "fig1/minn"});
  EXPECT_EQ(r.status, 2);
  EXPECT_NE(r.err.find("fig1/min"), std::string::npos) << r.err;
}

TEST(Crnc, UnknownFlagIsRejected) {
  const auto r = run({"list", "--bogus"});
  EXPECT_EQ(r.status, 2);
  EXPECT_NE(r.err.find("--bogus"), std::string::npos);
}

TEST(Crnc, ListHumanAndJson) {
  const auto human = run({"list"});
  EXPECT_EQ(human.status, 0);
  EXPECT_NE(human.out.find("fig1/min"), std::string::npos);

  const auto json = run({"list", "--json"});
  EXPECT_EQ(json.status, 0);
  expect_valid_json(json.out);
  EXPECT_NE(json.out.find("\"scenarios\""), std::string::npos);
  EXPECT_NE(json.out.find("chain/compose-256"), std::string::npos);
}

TEST(Crnc, ListMarkdownEmitsTable) {
  const auto r = run({"list", "--markdown"});
  EXPECT_EQ(r.status, 0);
  EXPECT_NE(r.out.find("| Scenario |"), std::string::npos);
  EXPECT_NE(r.out.find("`fig1/min`"), std::string::npos);
}

TEST(Crnc, ListTagFilter) {
  const auto r = run({"list", "--json", "--tag", "protocol"});
  EXPECT_EQ(r.status, 0);
  expect_valid_json(r.out);
  EXPECT_NE(r.out.find("protocol/majority"), std::string::npos);
  EXPECT_EQ(r.out.find("fig1/min"), std::string::npos);
}

TEST(Crnc, ShowJsonCarriesExpectedOutputs) {
  const auto r = run({"show", "fig1/twice", "--json"});
  EXPECT_EQ(r.status, 0);
  expect_valid_json(r.out);
  EXPECT_NE(r.out.find("\"verify_points\""), std::string::npos);
  EXPECT_NE(r.out.find("\"expected\""), std::string::npos);
  EXPECT_NE(r.out.find("\"crn_text\""), std::string::npos);
}

TEST(Crnc, CompileEmitsParsableText) {
  const auto r = run({"compile", "fig1/min"});
  EXPECT_EQ(r.status, 0);
  EXPECT_NE(r.out.find("crn min"), std::string::npos);
  EXPECT_NE(r.out.find("rxn"), std::string::npos);
}

TEST(Crnc, CompileToFileThenVerifyAsFileWorkload) {
  const std::string path =
      testing::TempDir() + "/crnc_cli_test_doubling.crn";
  const auto compile = run({"compile", "fig1/twice", "--out", path});
  EXPECT_EQ(compile.status, 0);

  // File workloads carry no reference function: --input/--expect drive it.
  const auto good = run({"verify", path, "--input", "4", "--expect", "8"});
  EXPECT_EQ(good.status, 0) << good.err;
  const auto bad = run({"verify", path, "--input", "4", "--expect", "9"});
  EXPECT_EQ(bad.status, 1);
  const auto missing = run({"verify", path});
  EXPECT_EQ(missing.status, 2);
  std::remove(path.c_str());
}

TEST(Crnc, SimulateAgreesWithReference) {
  const auto r = run({"simulate", "fig1/min", "--input", "5,7",
                      "--trajectories", "4", "--seed", "7", "--json"});
  EXPECT_EQ(r.status, 0) << r.err;
  expect_valid_json(r.out);
  EXPECT_NE(r.out.find("\"expected\": 5"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("\"ok\": true"), std::string::npos) << r.out;
}

TEST(Crnc, SimulateBudgetCappedReportsInconclusiveNotAgreement) {
  // No trajectory reaches silence inside 3 events, so nothing was actually
  // compared against the reference — the output must say so instead of
  // claiming agreement.
  const auto r = run({"simulate", "fig1/min", "--input", "50,50",
                      "--trajectories", "2", "--max-events", "3", "--json"});
  EXPECT_EQ(r.status, 0) << r.err;
  expect_valid_json(r.out);
  EXPECT_NE(r.out.find("\"silent\": 0"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("\"compared\": false"), std::string::npos) << r.out;

  const auto human = run({"simulate", "fig1/min", "--input", "50,50",
                          "--trajectories", "2", "--max-events", "3"});
  EXPECT_NE(human.out.find("inconclusive"), std::string::npos) << human.out;
  EXPECT_EQ(human.out.find("agrees"), std::string::npos) << human.out;
}

TEST(Crnc, SimulateMethodsRun) {
  for (const char* method : {"silent", "direct", "next-reaction"}) {
    const auto r = run({"simulate", "fig1/twice", "--input", "20",
                        "--trajectories", "2", "--method", method,
                        "--json"});
    EXPECT_EQ(r.status, 0) << method << ": " << r.err;
    expect_valid_json(r.out);
  }
  // The population scheduler needs a bimolecular network.
  const auto r = run({"simulate", "protocol/floor-3x2", "--input", "12",
                      "--trajectories", "2", "--method", "population",
                      "--json"});
  EXPECT_EQ(r.status, 0) << r.err;
  expect_valid_json(r.out);
}

TEST(Crnc, VerifyScenarioJson) {
  const auto r = run({"verify", "fig1/min", "--json"});
  EXPECT_EQ(r.status, 0) << r.err;
  expect_valid_json(r.out);
  EXPECT_NE(r.out.find("\"ok\": true"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("\"proved\": 25"), std::string::npos) << r.out;
}

TEST(Crnc, VerifyGridOverride) {
  const auto r = run({"verify", "fig1/twice", "--grid", "3", "--json"});
  EXPECT_EQ(r.status, 0) << r.err;
  EXPECT_NE(r.out.find("\"proved\": 4"), std::string::npos) << r.out;
}

TEST(Crnc, VerifyStatsEmitsPerfFields) {
  const auto r = run({"verify", "fig1/min", "--stats", "--json"});
  EXPECT_EQ(r.status, 0) << r.err;
  expect_valid_json(r.out);
  for (const char* field : {"\"stats\"", "\"wall_seconds\"",
                            "\"configs_per_sec\"", "\"frontier_peak\"",
                            "\"arena_bytes\"", "\"edges\""}) {
    EXPECT_NE(r.out.find(field), std::string::npos) << field << "\n" << r.out;
  }
}

TEST(Crnc, VerifyThreadsIsDeterministic) {
  // Without --stats (no timings), the whole JSON report must be
  // byte-identical at any thread count.
  const auto serial = run({"verify", "thm52/fig7", "--threads", "1",
                           "--max-configs", "30000", "--json"});
  const auto parallel = run({"verify", "thm52/fig7", "--threads", "3",
                             "--max-configs", "30000", "--json"});
  EXPECT_EQ(serial.status, parallel.status);
  EXPECT_EQ(serial.out, parallel.out);
}

TEST(Crnc, VerifyTruncationIsInconclusiveNotPass) {
  // A budget too small for the reachable set must never produce a PASS:
  // exit 1 and per-point status "inconclusive".
  const auto r = run({"verify", "fig1/twice", "--input", "50",
                      "--max-configs", "5", "--json"});
  EXPECT_EQ(r.status, 1);
  expect_valid_json(r.out);
  EXPECT_NE(r.out.find("\"status\": \"inconclusive\""), std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("\"complete\": false"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("\"inconclusive\": 1"), std::string::npos) << r.out;
  EXPECT_EQ(r.out.find("\"status\": \"proved\""), std::string::npos) << r.out;
}

TEST(Crnc, VerifyUnverifiableSkipsUnlessForced) {
  const auto skipped = run({"verify", "fig1/2max-broken", "--json"});
  EXPECT_EQ(skipped.status, 0);
  expect_valid_json(skipped.out);
  EXPECT_NE(skipped.out.find("\"skipped\": true"), std::string::npos);

  const auto forced = run({"verify", "fig1/2max-broken", "--force"});
  EXPECT_EQ(forced.status, 1);
  EXPECT_NE(forced.out.find("FAILED"), std::string::npos);
}

TEST(Crnc, VerifyEveryRegisteredScenario) {
  // The catalog's contract behind `crnc list`: every registered scenario
  // verifies, or is tagged unverifiable (which `verify` reports as a
  // skip). New registrations are covered automatically.
  for (const std::string& name : scenario::Registry::builtin().names()) {
    const auto r = run({"verify", name, "--json"});
    EXPECT_EQ(r.status, 0) << name << ":\n" << r.out << r.err;
    expect_valid_json(r.out);
  }
}

TEST(Crnc, NumericFlagOverflowIsUsageErrorNotCrash) {
  // Out-of-range integers must surface as usage errors (exit 2), never as
  // an uncaught std::out_of_range terminating the process.
  for (const auto& args : std::vector<std::vector<std::string>>{
           {"simulate", "fig1/min", "--max-steps", "99999999999999999999"},
           {"verify", "fig1/twice", "--max-configs",
            "99999999999999999999"},
           {"simulate", "fig1/min", "--trajectories", "-3"},
           {"bench", "fig1/min", "--events", "123abc"}}) {
    const auto r = run(args);
    EXPECT_EQ(r.status, 2) << args[2] << ": " << r.err;
    EXPECT_NE(r.err.find("nonnegative integer"), std::string::npos) << r.err;
  }
}

TEST(Crnc, InputPointOverflowIsUsageErrorNotCrash) {
  const auto huge = run({"verify", "fig1/min", "--input",
                         "99999999999999999999,1"});
  EXPECT_EQ(huge.status, 2) << huge.err;
  EXPECT_NE(huge.err.find("out of range"), std::string::npos) << huge.err;

  const auto junk = run({"simulate", "fig1/min", "--input", "3,x"});
  EXPECT_EQ(junk.status, 2) << junk.err;
}

TEST(Crnc, ComposeExpressionEndToEnd) {
  const auto r = run({"compose", "min(x1 + x2, 2*x3) + 1", "--verify",
                      "--simcheck", "--json"});
  EXPECT_EQ(r.status, 0) << r.err;
  expect_valid_json(r.out);
  EXPECT_NE(r.out.find("\"certified\": true"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("\"passes\""), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("\"verdict\": \"pass\""), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("\"non_silent_trials\": 0"), std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("\"ok\": true"), std::string::npos) << r.out;
}

TEST(Crnc, ComposeRandomFamilyShrinksAndVerifies) {
  const auto r = run({"compose", "circuit/random-12-1", "--verify",
                      "--json"});
  EXPECT_EQ(r.status, 0) << r.err;
  expect_valid_json(r.out);
  EXPECT_NE(r.out.find("\"modules\": 12"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("\"failed\": 0"), std::string::npos) << r.out;
  // The optimization passes must strictly shrink the compiled network.
  const auto number_after = [&r](const std::string& key) {
    const auto at = r.out.find(key);
    EXPECT_NE(at, std::string::npos) << key;
    return std::stoll(r.out.substr(at + key.size()));
  };
  EXPECT_LT(number_after("\"species\": "), number_after("\"species_raw\": "));
  EXPECT_LT(number_after("\"reactions\": "),
            number_after("\"reactions_raw\": "));
}

TEST(Crnc, ComposeSimcheckTinyBudgetIsInconclusiveNotFail) {
  const auto r = run({"compose", "min(x1, x2)", "--simcheck", "--max-steps",
                      "1", "--json"});
  EXPECT_EQ(r.status, 1) << r.out;
  expect_valid_json(r.out);
  EXPECT_NE(r.out.find("\"verdict\": \"inconclusive\""), std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("\"mismatches\": 0"), std::string::npos) << r.out;
}

TEST(Crnc, ComposeRejectsNonComposableModule) {
  // The paper's 2max demo: max consumes its output, Lemma 2.3 certifies it
  // non-composable, and compose refuses to build the broken circuit.
  const std::string path = testing::TempDir() + "/crnc_cli_test_2max.wire";
  {
    std::ofstream file(path);
    file << "circuit 2max\narity 2\n"
            "module m fig1/max\nmodule d fig1/twice\n"
            "connect x1 m.1\nconnect x2 m.2\nconnect m d.1\noutput d\n";
  }
  const auto r = run({"compose", path});
  EXPECT_EQ(r.status, 1) << r.out;
  EXPECT_NE(r.out.find("REJECTED (Lemma 2.3)"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("not composable by concatenation"), std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("certification FAILED"), std::string::npos) << r.out;

  const auto json = run({"compose", path, "--json"});
  EXPECT_EQ(json.status, 1);
  expect_valid_json(json.out);
  EXPECT_NE(json.out.find("\"composable\": false"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Crnc, ComposeWireFileBuildsCorrectCircuit) {
  // min into doubling — both modules oblivious, composes and verifies.
  const std::string path = testing::TempDir() + "/crnc_cli_test_2min.wire";
  {
    std::ofstream file(path);
    file << "circuit 2min  # f = 2*min(x1,x2)\narity 2\n"
            "module m fig1/min\nmodule d fig1/twice\n"
            "connect x1 m.1\nconnect x2 m.2\nconnect m d.1\noutput d\n";
  }
  const auto r = run({"compose", path, "--out",
                      testing::TempDir() + "/crnc_cli_test_2min.crn"});
  EXPECT_EQ(r.status, 0) << r.out;
  // No reference function in a wire file: the compiled artifact is checked
  // through the file-workload verify path instead.
  const auto check = run({"verify",
                          testing::TempDir() + "/crnc_cli_test_2min.crn",
                          "--input", "3,5", "--expect", "6"});
  EXPECT_EQ(check.status, 0) << check.err;
  std::remove(path.c_str());
  std::remove((testing::TempDir() + "/crnc_cli_test_2min.crn").c_str());
}

TEST(Crnc, ComposeRejectsReservedModuleId) {
  // `x<digits>` names external inputs in wire sources; a module with that
  // id would be unreferenceable, so the parser refuses it up front.
  const std::string path = testing::TempDir() + "/crnc_cli_test_xid.wire";
  {
    std::ofstream file(path);
    file << "circuit bad\narity 1\nmodule x1 fig1/twice\n"
            "connect x1 x1.1\noutput x1\n";
  }
  const auto r = run({"compose", path});
  EXPECT_EQ(r.status, 2) << r.out;
  EXPECT_NE(r.err.find("reserved for external inputs"), std::string::npos)
      << r.err;
  std::remove(path.c_str());
}

TEST(Crnc, ComposeParseErrorIsUsageError) {
  const auto r = run({"compose", "min(x1"});
  EXPECT_EQ(r.status, 2);
  EXPECT_NE(r.err.find("parse error"), std::string::npos) << r.err;

  // General max is not obliviously computable; the parser says so.
  const auto max2 = run({"compose", "max(x1, x2)"});
  EXPECT_EQ(max2.status, 2);
  EXPECT_NE(max2.err.find("not obliviously computable"), std::string::npos)
      << max2.err;
}

TEST(Crnc, BenchEmitsRecordShape) {
  const auto r = run({"bench", "fig1/min", "--trajectories", "2", "--events",
                      "50000", "--json"});
  EXPECT_EQ(r.status, 0) << r.err;
  expect_valid_json(r.out);
  EXPECT_NE(r.out.find("\"events_per_sec\""), std::string::npos);
  EXPECT_NE(r.out.find("\"wall_seconds\""), std::string::npos);
}

TEST(Crnc, EveryJsonOutputCarriesSchemaVersion) {
  // All subcommands route through svc::Service and its typed response
  // serializers; every --json top-level object leads with the wire schema
  // version so daemon clients and CLI consumers parse the same shape.
  const std::vector<std::vector<std::string>> commands = {
      {"list", "--json"},
      {"show", "fig1/min", "--json"},
      {"compile", "fig1/min", "--json"},
      {"simulate", "fig1/twice", "--trajectories", "4", "--json"},
      {"verify", "fig1/min", "--json"},
      {"bench", "fig1/min", "--trajectories", "2", "--events", "20000",
       "--json"},
      {"compose", "min(x1, x2) + 1", "--json"},
  };
  for (const auto& argv : commands) {
    const auto r = run(argv);
    EXPECT_EQ(r.status, 0) << argv[0] << ": " << r.err;
    const util::JsonValue root = util::JsonValue::parse(r.out);
    EXPECT_EQ(root.get_int("schema_version", -1), 1) << argv[0];
    EXPECT_EQ(r.out.rfind("{\"schema_version\": 1", 0), 0u)
        << argv[0] << " does not lead with schema_version";
  }
}

TEST(Crnc, VerifyJsonRoundTripsThroughParser) {
  // The --json output is not just syntactically valid: it parses into the
  // documented field shape, and the tallies are internally consistent.
  const auto r = run({"verify", "fig1/min", "--json"});
  EXPECT_EQ(r.status, 0) << r.err;
  const util::JsonValue root = util::JsonValue::parse(r.out);
  EXPECT_EQ(root.get_string("scenario", ""), "fig1/min");
  EXPECT_TRUE(root.get_bool("ok", false));
  const auto points = root.get("points").size();
  EXPECT_EQ(static_cast<std::int64_t>(points),
            root.get_int("proved", -1) + root.get_int("failed", -1) +
                root.get_int("inconclusive", -1));
  // A fresh CLI process starts with a cold cache: all misses, no hits.
  EXPECT_EQ(root.get_int("cache_hits", -1), 0);
  EXPECT_EQ(root.get_int("cache_misses", 0),
            static_cast<std::int64_t>(points));
  for (const util::JsonValue& point : root.get("points").items()) {
    EXPECT_FALSE(point.get_bool("cached", true));
    EXPECT_EQ(point.get_string("status", "?"), "proved");
  }
}

}  // namespace
}  // namespace crnkit::cli
