// Tests for the CRN core: species/reactions/configurations (Section 2.2),
// the output-oblivious and output-monotonic checks (Section 2.3,
// Observation 2.4), role-preserving transforms (Observation 5.3), and the
// bimolecular conversion (footnote 5).
#include <gtest/gtest.h>

#include "compile/primitives.h"
#include "crn/bimolecular.h"
#include "crn/checks.h"
#include "crn/network.h"
#include "crn/transform.h"

namespace crnkit::crn {
namespace {

using math::Int;

TEST(SpeciesTable, AddAndLookup) {
  SpeciesTable table;
  const SpeciesId a = table.add("A");
  const SpeciesId b = table.add("B");
  EXPECT_NE(a, b);
  EXPECT_EQ(table.id("A"), a);
  EXPECT_EQ(table.name(b), "B");
  EXPECT_FALSE(table.find("C").has_value());
  EXPECT_THROW(table.add("A"), std::invalid_argument);
  EXPECT_THROW(table.add(""), std::invalid_argument);
  EXPECT_THROW((void)table.id("missing"), std::invalid_argument);
}

TEST(Reaction, NormalizesAndMerges) {
  // A + A + B -> C merges duplicate terms.
  const Reaction r({{0, 1}, {0, 1}, {1, 1}}, {{2, 1}});
  EXPECT_EQ(r.reactant_count(0), 2);
  EXPECT_EQ(r.reactant_count(1), 1);
  EXPECT_EQ(r.order(), 3);
  EXPECT_EQ(r.net_change(0), -2);
  EXPECT_EQ(r.net_change(2), 1);
}

TEST(Reaction, RejectsNoOp) {
  EXPECT_THROW(Reaction({{0, 1}}, {{0, 1}}), std::invalid_argument);
  EXPECT_THROW(Reaction({}, {}), std::invalid_argument);
}

TEST(Reaction, ApplicabilityAndApplication) {
  const Reaction r({{0, 2}}, {{1, 3}});  // 2A -> 3B
  Config c{2, 0};
  EXPECT_TRUE(r.applicable(c));
  r.apply_in_place(c);
  EXPECT_EQ(c, (Config{0, 3}));
  EXPECT_FALSE(r.applicable(c));
}

TEST(Crn, ParseReactionStrings) {
  Crn crn("parse");
  crn.add_reaction_str("A + 2 B -> C");
  crn.add_reaction_str("C -> 0");
  crn.add_reaction_str("2X -> X + Y");
  ASSERT_EQ(crn.reactions().size(), 3u);
  EXPECT_EQ(crn.reactions()[0].to_string(crn.species_table()),
            "A + 2 B -> C");
  EXPECT_EQ(crn.reactions()[1].to_string(crn.species_table()), "C -> 0");
  EXPECT_EQ(crn.reactions()[2].to_string(crn.species_table()), "2 X -> X + Y");
  EXPECT_THROW(crn.add_reaction_str("A + B"), std::invalid_argument);
}

TEST(Crn, InitialConfigurationEncodesInputAndLeader) {
  Crn crn("enc");
  crn.set_input_species({"X1", "X2"});
  crn.set_output_species("Y");
  crn.set_leader_species("L");
  const Config c = crn.initial_configuration({3, 5});
  EXPECT_EQ(c[static_cast<std::size_t>(crn.species("X1"))], 3);
  EXPECT_EQ(c[static_cast<std::size_t>(crn.species("X2"))], 5);
  EXPECT_EQ(c[static_cast<std::size_t>(crn.species("L"))], 1);
  EXPECT_EQ(crn.output_count(c), 0);
}

TEST(Crn, SilenceDetection) {
  Crn crn("silent");
  crn.set_input_species({"X"});
  crn.set_output_species("Y");
  crn.add_reaction_str("X -> Y");
  Config c = crn.initial_configuration({2});
  EXPECT_FALSE(crn.is_silent(c));
  crn.reactions()[0].apply_in_place(c);
  crn.reactions()[0].apply_in_place(c);
  EXPECT_TRUE(crn.is_silent(c));
}

TEST(Checks, MinIsObliviousMaxIsNot) {
  EXPECT_TRUE(is_output_oblivious(compile::min_crn(2)));
  const Crn max = compile::fig1_max_crn();
  EXPECT_FALSE(is_output_oblivious(max));
  EXPECT_FALSE(is_output_monotonic(max));
  const auto offending = find_output_consuming_reaction(max);
  ASSERT_TRUE(offending.has_value());
  // Terms print in species-id order (Y was declared before K).
  EXPECT_EQ(*offending, "Y + K -> 0");
}

TEST(Checks, Fig2LeaderlessConsumesOutput) {
  EXPECT_FALSE(is_output_oblivious(compile::fig2_min1_leaderless()));
  EXPECT_TRUE(is_output_oblivious(compile::fig2_min1_leader()));
}

TEST(Checks, MonotonicButNotOblivious) {
  // Y + A -> Y + B: catalytic output use is monotonic but not oblivious.
  Crn crn("catalytic");
  crn.set_input_species({"A"});
  crn.set_output_species("Y");
  crn.add_reaction_str("Y + A -> Y + B");
  EXPECT_TRUE(is_output_monotonic(crn));
  EXPECT_FALSE(is_output_oblivious(crn));
}

TEST(Transform, RenameSpeciesPreservesRoles) {
  Crn crn = compile::min_crn(2);
  const Crn renamed = rename_species(crn, {{"Y", "W"}, {"X1", "A"}});
  EXPECT_TRUE(renamed.has_species("W"));
  EXPECT_TRUE(renamed.has_species("A"));
  EXPECT_FALSE(renamed.has_species("Y"));
  EXPECT_EQ(renamed.species_name(renamed.output_or_throw()), "W");
  EXPECT_EQ(renamed.species_name(renamed.inputs()[0]), "A");
}

TEST(Transform, RenameCollisionThrows) {
  Crn crn = compile::min_crn(2);
  EXPECT_THROW(rename_species(crn, {{"X1", "X2"}}), std::invalid_argument);
}

TEST(Transform, PrefixSpecies) {
  const Crn prefixed = prefix_species(compile::min_crn(2), "m0.");
  EXPECT_TRUE(prefixed.has_species("m0.X1"));
  EXPECT_TRUE(prefixed.has_species("m0.Y"));
}

TEST(Transform, MonotonicToObliviousPreservesShape) {
  Crn crn("catalytic");
  crn.set_input_species({"A", "B"});
  crn.set_output_species("Y");
  crn.set_leader_species("L");
  crn.add_reaction_str("L + A -> Y + L2");
  crn.add_reaction_str("Y + B -> Y + C");
  const Crn fixed = monotonic_to_oblivious(crn);
  EXPECT_TRUE(is_output_oblivious(fixed));
  // The catalytic reaction now uses the shadow species.
  bool found_shadow = false;
  for (const auto& r : fixed.reactions()) {
    const std::string s = r.to_string(fixed.species_table());
    if (s.find("B + Y#shadow ->") != std::string::npos) found_shadow = true;
  }
  EXPECT_TRUE(found_shadow);
}

TEST(Transform, MonotonicToObliviousRejectsConsumers) {
  EXPECT_THROW(monotonic_to_oblivious(compile::fig1_max_crn()),
               std::invalid_argument);
}

TEST(Transform, HardcodeInputSeedsPinnedValue) {
  // min(x1, x2) with x1 hardcoded to 2 computes min(2, x2).
  const Crn pinned = hardcode_input(compile::min_crn(2), 0, 2);
  EXPECT_EQ(pinned.input_arity(), 2);
  ASSERT_TRUE(pinned.leader().has_value());
  // The original input species X1 still exists (inert) and is declared.
  EXPECT_EQ(pinned.species_name(pinned.inputs()[0]), "X1");
}

TEST(Bimolecular, ConvertsHigherOrderReactions) {
  Crn crn("higher");
  crn.set_input_species({"X"});
  crn.set_output_species("Y");
  crn.add_reaction_str("3 X -> Y");
  EXPECT_EQ(max_reaction_order(crn), 3);
  const Crn bi = to_bimolecular(crn);
  EXPECT_LE(max_reaction_order(bi), 2);
  // Footnote 5's shape: 2X <-> X2 and X + X2 -> Y means 3 reactions.
  EXPECT_EQ(bi.reactions().size(), 3u);
  EXPECT_TRUE(is_output_oblivious(bi));
}

TEST(Bimolecular, PreservesLowOrderReactions) {
  const Crn bi = to_bimolecular(compile::min_crn(2));
  EXPECT_EQ(bi.reactions().size(), 1u);
}

TEST(Bimolecular, FiveReactantChain) {
  Crn crn("five");
  crn.set_input_species({"X"});
  crn.set_output_species("Y");
  crn.add_reaction_str("5 X -> 2 Y");
  const Crn bi = to_bimolecular(crn);
  EXPECT_LE(max_reaction_order(bi), 2);
  // Chain of 3 reversible pairings (C2, C3, C4) + final step:
  // 3*2 + 1 = 7 reactions.
  EXPECT_EQ(bi.reactions().size(), 7u);
}

}  // namespace
}  // namespace crnkit::crn
